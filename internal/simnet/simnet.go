// Package simnet simulates the paper's computer network: point-to-point
// links with end-to-end propagation delay bounded by T, a simple network
// partition splitting the sites into two groups G1 and G2 with a boundary B
// (Fig. 4), and the optimistic failure model in which a message that cannot
// cross B is returned to its sender as an undeliverable copy within 2T.
//
// # Delivery model
//
// A message from a to b sent at time s is assigned a forward delay
// d ∈ (0, T]. If a and b are on the same side of the partition (or no
// partition is active) it is delivered at s+d. Otherwise the message
// reaches the boundary at crossing time X = s + f·d, where f ∈ (0,1] is the
// boundary position along the path (BoundaryFrac, worst case 1.0): if the
// partition is active at X the message turns around and arrives back at the
// sender at s + 2·f·d ≤ s + 2T, exactly the paper's undeliverable-return
// bound; if the partition is not active at X (onset later, or already
// healed) the message is delivered normally.
//
// In the pessimistic model (Mode == Pessimistic) a message that cannot
// cross B is silently lost instead of returned — the model under which
// Skeen and Stonebraker proved no resilient protocol exists; experiment E15
// reproduces that impossibility.
package simnet

import (
	"fmt"
	"sort"

	"termproto/internal/proto"
	"termproto/internal/sim"
	"termproto/internal/trace"
)

// Mode selects the partition failure model.
type Mode uint8

// Failure models.
const (
	Optimistic  Mode = iota // undeliverable messages are returned to sender
	Pessimistic             // undeliverable messages are lost
)

// Latency produces per-message forward delays. Implementations must return
// values in (0, T].
type Latency interface {
	// Delay returns the forward propagation delay for one message.
	Delay(from, to proto.SiteID, r *sim.Rand) sim.Duration
}

// Fixed is a constant-latency model: every message takes exactly D.
type Fixed struct{ D sim.Duration }

// Delay implements Latency.
func (f Fixed) Delay(_, _ proto.SiteID, _ *sim.Rand) sim.Duration { return f.D }

// Uniform draws each delay uniformly from [Lo, Hi].
type Uniform struct{ Lo, Hi sim.Duration }

// Delay implements Latency.
func (u Uniform) Delay(_, _ proto.SiteID, r *sim.Rand) sim.Duration {
	return r.Duration(u.Lo, u.Hi)
}

// PerPair assigns a fixed delay per (from, to) pair, falling back to
// Default for unlisted pairs. It lets experiments build adversarial
// schedules that realize the paper's worst cases exactly.
type PerPair struct {
	Default sim.Duration
	Pairs   map[[2]proto.SiteID]sim.Duration
}

// Delay implements Latency.
func (p PerPair) Delay(from, to proto.SiteID, _ *sim.Rand) sim.Duration {
	if d, ok := p.Pairs[[2]proto.SiteID{from, to}]; ok {
		return d
	}
	return p.Default
}

// MsgLatency is an optional refinement of Latency: implementations see the
// whole message, so delays can differ per message kind on the same link —
// required to stage the Figure 6/7/9 worst cases, where e.g. a slave's ack
// must be fast while its later probe on the same link is slow.
type MsgLatency interface {
	Latency
	DelayMsg(m proto.Msg, r *sim.Rand) sim.Duration
}

// KindRule matches messages for PerKind; zero-valued fields are wildcards.
type KindRule struct {
	From, To proto.SiteID
	Kind     proto.Kind
	D        sim.Duration
}

// PerKind assigns delays by (from, to, kind) rules, first match wins,
// falling back to Default.
type PerKind struct {
	Default sim.Duration
	Rules   []KindRule
}

// DelayMsg implements MsgLatency.
func (p PerKind) DelayMsg(m proto.Msg, _ *sim.Rand) sim.Duration {
	for _, r := range p.Rules {
		if (r.From == 0 || r.From == m.From) &&
			(r.To == 0 || r.To == m.To) &&
			(r.Kind == 0 || r.Kind == m.Kind) {
			return r.D
		}
	}
	return p.Default
}

// Delay implements Latency (kind treated as wildcard-only fallback).
func (p PerKind) Delay(from, to proto.SiteID, r *sim.Rand) sim.Duration {
	return p.DelayMsg(proto.Msg{From: from, To: to}, r)
}

// Partition is a simple network partition: the sites in G2 are separated
// from everything else between At (inclusive) and Heal (exclusive). If
// Heal <= At the partition is permanent. The zero value means no partition.
type Partition struct {
	At   sim.Time
	Heal sim.Time
	G2   map[proto.SiteID]bool
}

// Active reports whether the partition is in force at time t.
func (p *Partition) Active(t sim.Time) bool {
	if p == nil || len(p.G2) == 0 {
		return false
	}
	if t < p.At {
		return false
	}
	if p.Heal > p.At && t >= p.Heal {
		return false
	}
	return true
}

// Permanent reports whether the partition never heals.
func (p *Partition) Permanent() bool {
	return p != nil && len(p.G2) > 0 && p.Heal <= p.At
}

// CrossPair reports whether a and b are on opposite sides of B (regardless
// of whether the partition is currently active).
func (p *Partition) CrossPair(a, b proto.SiteID) bool {
	if p == nil || len(p.G2) == 0 {
		return false
	}
	return p.G2[a] != p.G2[b]
}

// Separated reports whether a message between a and b at time t cannot
// cross the boundary.
func (p *Partition) Separated(a, b proto.SiteID, t sim.Time) bool {
	return p.Active(t) && p.CrossPair(a, b)
}

// Config parameterizes a Network.
type Config struct {
	Sched *sim.Scheduler
	// T is the longest end-to-end propagation delay. Latency model outputs
	// are clamped to (0, T]. Defaults to sim.DefaultT.
	T sim.Duration
	// Latency produces per-message forward delays. Defaults to Fixed{T}.
	Latency Latency
	// BoundaryFrac is the boundary position f ∈ (0, 1] along each
	// cross-partition path. 1.0 (default) is the adversarial worst case:
	// the message discovers the partition only on arrival, so the
	// undeliverable copy returns a full 2d after sending.
	BoundaryFrac float64
	Mode         Mode
	Partition    *Partition
	// Partitions is the full partition timeline: a sequence of (possibly
	// transient) partitions with distinct onsets, enabling repartition
	// scenarios. Partition, if set, is prepended to the list. More
	// partitions can be added while the simulation runs via AddPartition.
	Partitions []*Partition
	Rand       *sim.Rand
	Trace      *trace.Recorder
}

// Handler receives deliveries for one site.
type Handler interface {
	// Deliver handles a normally delivered message.
	Deliver(m proto.Msg)
	// Undeliverable handles the returned copy of a message this site sent.
	Undeliverable(m proto.Msg)
}

// HandlerFuncs adapts two funcs to Handler.
type HandlerFuncs struct {
	OnDeliver       func(m proto.Msg)
	OnUndeliverable func(m proto.Msg)
}

// Deliver implements Handler.
func (h HandlerFuncs) Deliver(m proto.Msg) { h.OnDeliver(m) }

// Undeliverable implements Handler.
func (h HandlerFuncs) Undeliverable(m proto.Msg) { h.OnUndeliverable(m) }

// crashSpan is one failure interval; until < 0 means "not yet recovered".
type crashSpan struct {
	from, until sim.Time
}

// Network is the simulated partitionable network.
type Network struct {
	cfg        Config
	sched      *sim.Scheduler
	handlers   map[proto.SiteID]Handler
	crashes    map[proto.SiteID][]crashSpan
	partitions []*Partition
	seq        uint64

	sent, delivered, bounced, dropped uint64
}

// New builds a network. It panics on a nil scheduler or invalid config,
// since those are always harness bugs.
func New(cfg Config) *Network {
	if cfg.Sched == nil {
		panic("simnet: nil scheduler")
	}
	if cfg.T <= 0 {
		cfg.T = sim.DefaultT
	}
	if cfg.Latency == nil {
		cfg.Latency = Fixed{cfg.T}
	}
	if cfg.BoundaryFrac <= 0 || cfg.BoundaryFrac > 1 {
		cfg.BoundaryFrac = 1.0
	}
	if cfg.Rand == nil {
		cfg.Rand = sim.NewRand(1)
	}
	n := &Network{
		cfg:      cfg,
		sched:    cfg.Sched,
		handlers: make(map[proto.SiteID]Handler),
		crashes:  make(map[proto.SiteID][]crashSpan),
	}
	if cfg.Partition != nil {
		n.addPartition(cfg.Partition)
	}
	for _, p := range cfg.Partitions {
		n.addPartition(p)
	}
	return n
}

// Register installs the handler for a site. Registering twice panics.
func (n *Network) Register(id proto.SiteID, h Handler) {
	if _, dup := n.handlers[id]; dup {
		panic(fmt.Sprintf("simnet: site %d registered twice", id))
	}
	if h == nil {
		panic("simnet: nil handler")
	}
	n.handlers[id] = h
}

// Sites returns the registered site IDs in ascending order.
func (n *Network) Sites() []proto.SiteID {
	out := make([]proto.SiteID, 0, len(n.handlers))
	for id := range n.handlers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// T returns the configured longest end-to-end delay.
func (n *Network) T() sim.Duration { return n.cfg.T }

// Partition returns the first configured partition (possibly nil).
func (n *Network) Partition() *Partition {
	if len(n.partitions) == 0 {
		return nil
	}
	return n.partitions[0]
}

// AddPartition appends a partition to the timeline and schedules its trace
// edges. Partitions whose onset lies in the past take effect for messages
// sent from now on (already-sent messages computed their fate at send
// time).
func (n *Network) AddPartition(p *Partition) { n.addPartition(p) }

func (n *Network) addPartition(p *Partition) {
	if p == nil || len(p.G2) == 0 {
		return
	}
	n.partitions = append(n.partitions, p)
	n.schedulePartitionEdges(p)
}

// Separated reports whether a message between a and b at time t cannot
// cross some active boundary — the reachability predicate recovery-time
// inquiries consult.
func (n *Network) Separated(a, b proto.SiteID, t sim.Time) bool {
	return n.separatedAt(a, b, t)
}

// separatedAt reports whether a message between a and b cannot cross some
// boundary active at time t.
func (n *Network) separatedAt(a, b proto.SiteID, t sim.Time) bool {
	for _, p := range n.partitions {
		if p.Separated(a, b, t) {
			return true
		}
	}
	return false
}

// crossesAny reports whether the pair (a, b) straddles any configured
// partition's boundary, active or not — the trace annotation for Send
// events.
func (n *Network) crossesAny(a, b proto.SiteID) bool {
	for _, p := range n.partitions {
		if p.CrossPair(a, b) {
			return true
		}
	}
	return false
}

// Stats returns cumulative message counters:
// sent, delivered, bounced, dropped.
func (n *Network) Stats() (sent, delivered, bounced, dropped uint64) {
	return n.sent, n.delivered, n.bounced, n.dropped
}

// CrashAt marks a site as failed from time t onward: messages addressed to
// it after t are lost without an undeliverable return (a site failure is
// indistinguishable from message loss, paper §7), and the harness must stop
// driving its automata. A later RecoverAt ends the failure interval.
func (n *Network) CrashAt(id proto.SiteID, t sim.Time) {
	n.crashes[id] = append(n.crashes[id], crashSpan{from: t, until: -1})
	n.sched.At(t, sim.PriPartition, func() {
		n.trace(trace.Event{At: n.sched.Now(), Kind: trace.Crash, Site: int(id)})
	})
}

// RecoverAt ends the site's most recent open failure interval at time t:
// messages addressed to it from t onward are delivered again. Recovering a
// site that is not crashed is a no-op.
func (n *Network) RecoverAt(id proto.SiteID, t sim.Time) {
	spans := n.crashes[id]
	if len(spans) == 0 || spans[len(spans)-1].until >= 0 {
		return
	}
	spans[len(spans)-1].until = t
	n.sched.At(t, sim.PriPartition, func() {
		n.trace(trace.Event{At: n.sched.Now(), Kind: trace.Recover, Site: int(id)})
	})
}

// Crashed reports whether id is failed at time t.
func (n *Network) Crashed(id proto.SiteID, t sim.Time) bool {
	for _, s := range n.crashes[id] {
		if t >= s.from && (s.until < 0 || t < s.until) {
			return true
		}
	}
	return false
}

// Send transmits m.Kind from m.From to m.To. The fate of the message
// (deliver, bounce, drop) is computed deterministically at send time from
// the partition schedule; see the package comment for the model.
func (n *Network) Send(m proto.Msg) {
	if m.From == m.To {
		panic(fmt.Sprintf("simnet: site %d sending to itself", m.From))
	}
	if _, ok := n.handlers[m.To]; !ok {
		panic(fmt.Sprintf("simnet: send to unregistered site %d", m.To))
	}
	now := n.sched.Now()
	m.Seq = n.seq
	n.seq++
	m.SentAt = now
	m.Undeliverable = false
	n.sent++

	var d sim.Duration
	if ml, ok := n.cfg.Latency.(MsgLatency); ok {
		d = ml.DelayMsg(m, n.cfg.Rand)
	} else {
		d = n.cfg.Latency.Delay(m.From, m.To, n.cfg.Rand)
	}
	if d <= 0 {
		d = 1
	}
	if d > n.cfg.T {
		d = n.cfg.T
	}

	cross := n.crossesAny(m.From, m.To)
	n.trace(msgEvent(trace.Send, now, int(m.From), m, cross))

	// Crossing time X = s + f*d; blocked iff some partition separating the
	// endpoints is active at X.
	crossAt := now + sim.Time(float64(d)*n.cfg.BoundaryFrac+0.5)
	if crossAt <= now {
		crossAt = now + 1
	}
	if n.separatedAt(m.From, m.To, crossAt) {
		if n.cfg.Mode == Pessimistic {
			n.sched.At(crossAt, sim.PriDeliver, func() {
				n.dropped++
				n.trace(msgEvent(trace.Drop, n.sched.Now(), int(m.To), m, true))
			})
			return
		}
		// Return trip: same distance back to the sender.
		back := crossAt + (crossAt - now)
		if back <= crossAt {
			back = crossAt + 1
		}
		n.sched.At(back, sim.PriDeliver, func() {
			n.bounced++
			ud := m
			ud.Undeliverable = true
			n.trace(msgEvent(trace.Bounce, n.sched.Now(), int(m.From), m, true))
			if n.Crashed(m.From, n.sched.Now()) {
				return
			}
			n.handlers[m.From].Undeliverable(ud)
		})
		return
	}

	arrival := now + sim.Time(d)
	n.sched.At(arrival, sim.PriDeliver, func() {
		if n.Crashed(m.To, n.sched.Now()) {
			n.dropped++
			ev := msgEvent(trace.Drop, n.sched.Now(), int(m.To), m, cross)
			ev.Detail = "dest crashed"
			n.trace(ev)
			return
		}
		n.delivered++
		n.trace(msgEvent(trace.Deliver, n.sched.Now(), int(m.To), m, cross))
		n.handlers[m.To].Deliver(m)
	})
}

func (n *Network) schedulePartitionEdges(p *Partition) {
	now := n.sched.Now()
	if at := p.At; at >= now {
		n.sched.At(at, sim.PriPartition, func() {
			n.trace(trace.Event{At: n.sched.Now(), Kind: trace.PartitionOn, Detail: p.describe()})
		})
	}
	if p.Heal > p.At && p.Heal >= now {
		n.sched.At(p.Heal, sim.PriPartition, func() {
			n.trace(trace.Event{At: n.sched.Now(), Kind: trace.PartitionOff})
		})
	}
}

func (p *Partition) describe() string {
	ids := make([]int, 0, len(p.G2))
	for id := range p.G2 {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	return fmt.Sprintf("G2=%v", ids)
}

func (n *Network) trace(e trace.Event) { n.cfg.Trace.Append(e) }

func msgEvent(k trace.EventKind, at sim.Time, site int, m proto.Msg, cross bool) trace.Event {
	return trace.Event{
		At:      at,
		Kind:    k,
		Site:    site,
		From:    int(m.From),
		To:      int(m.To),
		MsgKind: m.Kind.String(),
		TID:     uint64(m.TID),
		Cross:   cross,
	}
}

// G2Set builds a Partition group set from site IDs.
func G2Set(ids ...proto.SiteID) map[proto.SiteID]bool {
	g := make(map[proto.SiteID]bool, len(ids))
	for _, id := range ids {
		g[id] = true
	}
	return g
}
