package simnet

import (
	"testing"

	"termproto/internal/proto"
	"termproto/internal/sim"
	"termproto/internal/trace"
)

type capture struct {
	delivered []proto.Msg
	returned  []proto.Msg
	at        []sim.Time
	sched     *sim.Scheduler
}

func (c *capture) Deliver(m proto.Msg) {
	c.delivered = append(c.delivered, m)
	c.at = append(c.at, c.sched.Now())
}
func (c *capture) Undeliverable(m proto.Msg) {
	c.returned = append(c.returned, m)
	c.at = append(c.at, c.sched.Now())
}

func build(t *testing.T, cfg Config, sites ...proto.SiteID) (*Network, map[proto.SiteID]*capture) {
	t.Helper()
	n := New(cfg)
	caps := make(map[proto.SiteID]*capture)
	for _, id := range sites {
		c := &capture{sched: cfg.Sched}
		caps[id] = c
		n.Register(id, c)
	}
	return n, caps
}

func TestDeliveryAtFixedLatency(t *testing.T) {
	s := sim.NewScheduler()
	n, caps := build(t, Config{Sched: s, T: 100, Latency: Fixed{40}}, 1, 2)
	n.Send(proto.Msg{TID: 7, From: 1, To: 2, Kind: proto.MsgXact})
	s.Run()
	c := caps[2]
	if len(c.delivered) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(c.delivered))
	}
	if c.at[0] != 40 {
		t.Fatalf("delivered at %d, want 40", c.at[0])
	}
	m := c.delivered[0]
	if m.Kind != proto.MsgXact || m.TID != 7 || m.From != 1 || m.To != 2 || m.Undeliverable {
		t.Fatalf("delivered message corrupted: %+v", m)
	}
}

func TestLatencyClampedToT(t *testing.T) {
	s := sim.NewScheduler()
	n, caps := build(t, Config{Sched: s, T: 50, Latency: Fixed{500}}, 1, 2)
	n.Send(proto.Msg{From: 1, To: 2, Kind: proto.MsgYes})
	s.Run()
	if caps[2].at[0] != 50 {
		t.Fatalf("delivery at %d, want clamped to T=50", caps[2].at[0])
	}
}

func TestCrossPartitionBounceTiming(t *testing.T) {
	// Message sent at 0 with delay T=100, boundary at f=1.0, partition
	// active from 0: crossing attempt at 100 fails, UD returns at 200 = 2T.
	s := sim.NewScheduler()
	p := &Partition{At: 0, G2: G2Set(2)}
	n, caps := build(t, Config{Sched: s, T: 100, Latency: Fixed{100}, Partition: p}, 1, 2)
	n.Send(proto.Msg{From: 1, To: 2, Kind: proto.MsgPrepare})
	s.Run()
	c1 := caps[1]
	if len(c1.returned) != 1 {
		t.Fatalf("sender got %d UD returns, want 1", len(c1.returned))
	}
	if c1.at[0] != 200 {
		t.Fatalf("UD returned at %d, want 200 (= 2T)", c1.at[0])
	}
	if !c1.returned[0].Undeliverable {
		t.Fatal("returned copy not marked undeliverable")
	}
	if got := c1.returned[0].Kind; got != proto.MsgPrepare {
		t.Fatalf("returned kind = %v, want prepare", got)
	}
	if len(caps[2].delivered) != 0 {
		t.Fatal("separated destination received the message")
	}
}

func TestBoundaryFracHalvesReturnTime(t *testing.T) {
	s := sim.NewScheduler()
	p := &Partition{At: 0, G2: G2Set(2)}
	n, caps := build(t, Config{Sched: s, T: 100, Latency: Fixed{100}, Partition: p, BoundaryFrac: 0.5}, 1, 2)
	n.Send(proto.Msg{From: 1, To: 2, Kind: proto.MsgPrepare})
	s.Run()
	if caps[1].at[0] != 100 {
		t.Fatalf("UD returned at %d, want 100 (= 2*f*d with f=0.5)", caps[1].at[0])
	}
}

func TestInFlightMessagePassesBoundaryBeforeOnset(t *testing.T) {
	// f=0.5: message sent at 0 with delay 100 crosses B at 50. Partition
	// starting at 60 is too late to stop it: delivered at 100.
	s := sim.NewScheduler()
	p := &Partition{At: 60, G2: G2Set(2)}
	n, caps := build(t, Config{Sched: s, T: 100, Latency: Fixed{100}, Partition: p, BoundaryFrac: 0.5}, 1, 2)
	n.Send(proto.Msg{From: 1, To: 2, Kind: proto.MsgPrepare})
	s.Run()
	if len(caps[2].delivered) != 1 || caps[2].at[0] != 100 {
		t.Fatalf("message should pass B before onset; delivered=%d", len(caps[2].delivered))
	}
}

func TestInFlightMessageCaughtByOnset(t *testing.T) {
	// f=1.0: crossing at 100; partition starts at 60 < 100: bounced.
	s := sim.NewScheduler()
	p := &Partition{At: 60, G2: G2Set(2)}
	n, caps := build(t, Config{Sched: s, T: 100, Latency: Fixed{100}, Partition: p}, 1, 2)
	n.Send(proto.Msg{From: 1, To: 2, Kind: proto.MsgPrepare})
	s.Run()
	if len(caps[2].delivered) != 0 {
		t.Fatal("message crossed an active boundary")
	}
	if len(caps[1].returned) != 1 {
		t.Fatal("no UD return")
	}
}

func TestHealAllowsCrossing(t *testing.T) {
	// Partition [10, 50); message sent at 60 crosses freely.
	s := sim.NewScheduler()
	p := &Partition{At: 10, Heal: 50, G2: G2Set(2)}
	n, caps := build(t, Config{Sched: s, T: 100, Latency: Fixed{30}, Partition: p}, 1, 2)
	s.At(60, sim.PriControl, func() {
		n.Send(proto.Msg{From: 1, To: 2, Kind: proto.MsgProbe})
	})
	s.Run()
	if len(caps[2].delivered) != 1 || caps[2].at[0] != 90 {
		t.Fatalf("post-heal message not delivered normally: %v", caps[2].at)
	}
}

func TestMessageArrivingExactlyAtOnsetIsBlocked(t *testing.T) {
	// Crossing time X equals partition onset: Active(X) is inclusive of At,
	// so the message bounces. This pins the boundary-edge convention.
	s := sim.NewScheduler()
	p := &Partition{At: 100, G2: G2Set(2)}
	n, caps := build(t, Config{Sched: s, T: 100, Latency: Fixed{100}, Partition: p}, 1, 2)
	n.Send(proto.Msg{From: 1, To: 2, Kind: proto.MsgCommit})
	s.Run()
	if len(caps[2].delivered) != 0 {
		t.Fatal("message delivered at exact onset instant; convention is blocked")
	}
}

func TestMessageCrossingExactlyAtHealIsDelivered(t *testing.T) {
	s := sim.NewScheduler()
	p := &Partition{At: 10, Heal: 100, G2: G2Set(2)}
	n, caps := build(t, Config{Sched: s, T: 100, Latency: Fixed{100}, Partition: p}, 1, 2)
	n.Send(proto.Msg{From: 1, To: 2, Kind: proto.MsgCommit})
	s.Run()
	if len(caps[2].delivered) != 1 {
		t.Fatal("message crossing exactly at heal instant should pass")
	}
}

func TestSameGroupUnaffected(t *testing.T) {
	s := sim.NewScheduler()
	p := &Partition{At: 0, G2: G2Set(3)}
	n, caps := build(t, Config{Sched: s, T: 100, Latency: Fixed{25}, Partition: p}, 1, 2, 3)
	n.Send(proto.Msg{From: 1, To: 2, Kind: proto.MsgXact})
	s.Run()
	if len(caps[2].delivered) != 1 || caps[2].at[0] != 25 {
		t.Fatal("same-group message disturbed by partition")
	}
}

func TestG2InternalTrafficUnaffected(t *testing.T) {
	s := sim.NewScheduler()
	p := &Partition{At: 0, G2: G2Set(2, 3)}
	n, caps := build(t, Config{Sched: s, T: 100, Latency: Fixed{25}, Partition: p}, 1, 2, 3)
	n.Send(proto.Msg{From: 2, To: 3, Kind: proto.MsgCommit})
	s.Run()
	if len(caps[3].delivered) != 1 {
		t.Fatal("G2-internal message blocked")
	}
}

func TestPessimisticModeDrops(t *testing.T) {
	s := sim.NewScheduler()
	rec := &trace.Recorder{}
	p := &Partition{At: 0, G2: G2Set(2)}
	n, caps := build(t, Config{Sched: s, T: 100, Latency: Fixed{100}, Partition: p, Mode: Pessimistic, Trace: rec}, 1, 2)
	n.Send(proto.Msg{From: 1, To: 2, Kind: proto.MsgPrepare})
	s.Run()
	if len(caps[1].returned) != 0 {
		t.Fatal("pessimistic mode returned a UD copy")
	}
	if len(caps[2].delivered) != 0 {
		t.Fatal("pessimistic mode delivered across B")
	}
	_, _, bounced, dropped := n.Stats()
	if bounced != 0 || dropped != 1 {
		t.Fatalf("stats bounced=%d dropped=%d, want 0/1", bounced, dropped)
	}
	if got := rec.CrossFailed("prepare"); got != 1 {
		t.Fatalf("trace CrossFailed(prepare) = %d, want 1", got)
	}
}

func TestCrashedSiteDropsInbound(t *testing.T) {
	s := sim.NewScheduler()
	n, caps := build(t, Config{Sched: s, T: 100, Latency: Fixed{10}}, 1, 2)
	n.CrashAt(2, 5)
	n.Send(proto.Msg{From: 1, To: 2, Kind: proto.MsgXact}) // arrives at 10 > 5
	s.Run()
	if len(caps[2].delivered) != 0 {
		t.Fatal("crashed site received a message")
	}
	if len(caps[1].returned) != 0 {
		t.Fatal("crash produced a UD return; site failure must look like loss")
	}
}

func TestCrashedSiteStillReceivesBeforeCrash(t *testing.T) {
	s := sim.NewScheduler()
	n, caps := build(t, Config{Sched: s, T: 100, Latency: Fixed{10}}, 1, 2)
	n.CrashAt(2, 50)
	n.Send(proto.Msg{From: 1, To: 2, Kind: proto.MsgXact})
	s.Run()
	if len(caps[2].delivered) != 1 {
		t.Fatal("message before crash time was dropped")
	}
}

func TestTraceRecordsLifecycle(t *testing.T) {
	s := sim.NewScheduler()
	rec := &trace.Recorder{}
	p := &Partition{At: 0, G2: G2Set(2)}
	n, _ := build(t, Config{Sched: s, T: 100, Latency: Fixed{50}, Partition: p, Trace: rec}, 1, 2, 3)
	n.Send(proto.Msg{From: 1, To: 2, Kind: proto.MsgPrepare}) // bounces
	n.Send(proto.Msg{From: 1, To: 3, Kind: proto.MsgPrepare}) // delivers
	s.Run()
	if got := len(rec.Messages(trace.Send, "prepare")); got != 2 {
		t.Fatalf("trace sends = %d, want 2", got)
	}
	if got := rec.CrossDelivered("prepare"); got != 0 {
		t.Fatalf("CrossDelivered = %d, want 0", got)
	}
	if got := rec.CrossFailed("prepare"); got != 1 {
		t.Fatalf("CrossFailed = %d, want 1", got)
	}
	if got := len(rec.Messages(trace.Deliver, "prepare")); got != 1 {
		t.Fatalf("deliveries = %d, want 1", got)
	}
}

func TestSendPanicsOnSelfAndUnknown(t *testing.T) {
	s := sim.NewScheduler()
	n, _ := build(t, Config{Sched: s, T: 100}, 1, 2)
	for name, m := range map[string]proto.Msg{
		"self":    {From: 1, To: 1, Kind: proto.MsgXact},
		"unknown": {From: 1, To: 9, Kind: proto.MsgXact},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Send %s did not panic", name)
				}
			}()
			n.Send(m)
		}()
	}
}

func TestRegisterTwicePanics(t *testing.T) {
	s := sim.NewScheduler()
	n := New(Config{Sched: s})
	n.Register(1, HandlerFuncs{OnDeliver: func(proto.Msg) {}, OnUndeliverable: func(proto.Msg) {}})
	defer func() {
		if recover() == nil {
			t.Error("double register did not panic")
		}
	}()
	n.Register(1, HandlerFuncs{OnDeliver: func(proto.Msg) {}, OnUndeliverable: func(proto.Msg) {}})
}

func TestPartitionPredicates(t *testing.T) {
	p := &Partition{At: 10, Heal: 20, G2: G2Set(3, 4)}
	cases := []struct {
		t      sim.Time
		active bool
	}{{0, false}, {9, false}, {10, true}, {15, true}, {19, true}, {20, false}, {100, false}}
	for _, c := range cases {
		if got := p.Active(c.t); got != c.active {
			t.Errorf("Active(%d) = %v, want %v", c.t, got, c.active)
		}
	}
	if p.Permanent() {
		t.Error("healing partition reported permanent")
	}
	perm := &Partition{At: 10, G2: G2Set(3)}
	if !perm.Permanent() {
		t.Error("permanent partition not reported permanent")
	}
	if !p.CrossPair(1, 3) || p.CrossPair(3, 4) || p.CrossPair(1, 2) {
		t.Error("CrossPair wrong")
	}
	var nilP *Partition
	if nilP.Active(5) || nilP.CrossPair(1, 2) || nilP.Separated(1, 2, 5) {
		t.Error("nil partition must be inert")
	}
}

func TestUniformLatencyWithinBounds(t *testing.T) {
	r := sim.NewRand(3)
	u := Uniform{Lo: 10, Hi: 90}
	for i := 0; i < 1000; i++ {
		d := u.Delay(1, 2, r)
		if d < 10 || d > 90 {
			t.Fatalf("Uniform delay %d out of bounds", d)
		}
	}
}

func TestPerPairLatency(t *testing.T) {
	pp := PerPair{Default: 30, Pairs: map[[2]proto.SiteID]sim.Duration{{1, 2}: 99}}
	if d := pp.Delay(1, 2, nil); d != 99 {
		t.Fatalf("pair delay = %d, want 99", d)
	}
	if d := pp.Delay(2, 1, nil); d != 30 {
		t.Fatalf("default delay = %d, want 30", d)
	}
}

func TestStatsCounters(t *testing.T) {
	s := sim.NewScheduler()
	p := &Partition{At: 0, G2: G2Set(2)}
	n, _ := build(t, Config{Sched: s, T: 100, Latency: Fixed{10}, Partition: p}, 1, 2, 3)
	n.Send(proto.Msg{From: 1, To: 2, Kind: proto.MsgXact}) // bounce
	n.Send(proto.Msg{From: 1, To: 3, Kind: proto.MsgXact}) // deliver
	s.Run()
	sent, delivered, bounced, dropped := n.Stats()
	if sent != 2 || delivered != 1 || bounced != 1 || dropped != 0 {
		t.Fatalf("stats = %d/%d/%d/%d, want 2/1/1/0", sent, delivered, bounced, dropped)
	}
}

func TestDeterministicSequenceNumbers(t *testing.T) {
	run := func() []uint64 {
		s := sim.NewScheduler()
		n, caps := build(t, Config{Sched: s, T: 100, Latency: Fixed{10}}, 1, 2)
		for i := 0; i < 5; i++ {
			n.Send(proto.Msg{From: 1, To: 2, Kind: proto.MsgXact, TID: proto.TxnID(i)})
		}
		s.Run()
		var seqs []uint64
		for _, m := range caps[2].delivered {
			seqs = append(seqs, m.Seq)
		}
		return seqs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sequence numbers not deterministic")
		}
	}
}

func TestPerKindLatency(t *testing.T) {
	pk := PerKind{
		Default: 100,
		Rules: []KindRule{
			{From: 1, To: 2, Kind: proto.MsgPrepare, D: 10},
			{Kind: proto.MsgProbe, D: 77},
			{From: 3, D: 55},
		},
	}
	cases := []struct {
		m    proto.Msg
		want sim.Duration
	}{
		{proto.Msg{From: 1, To: 2, Kind: proto.MsgPrepare}, 10},
		{proto.Msg{From: 1, To: 3, Kind: proto.MsgPrepare}, 100},
		{proto.Msg{From: 2, To: 1, Kind: proto.MsgProbe}, 77},
		{proto.Msg{From: 3, To: 1, Kind: proto.MsgAck}, 55},
		{proto.Msg{From: 2, To: 1, Kind: proto.MsgAck}, 100},
	}
	for _, c := range cases {
		if got := pk.DelayMsg(c.m, nil); got != c.want {
			t.Errorf("DelayMsg(%v) = %d, want %d", c.m, got, c.want)
		}
	}
	if got := pk.Delay(1, 2, nil); got != 100 {
		t.Errorf("Delay fallback = %d, want 100 (kind wildcard only)", got)
	}
}

func TestNetworkUsesPerKind(t *testing.T) {
	s := sim.NewScheduler()
	pk := PerKind{Default: 90, Rules: []KindRule{{Kind: proto.MsgYes, D: 15}}}
	n, caps := build(t, Config{Sched: s, T: 100, Latency: pk}, 1, 2)
	n.Send(proto.Msg{From: 1, To: 2, Kind: proto.MsgYes})
	n.Send(proto.Msg{From: 1, To: 2, Kind: proto.MsgXact})
	s.Run()
	if caps[2].at[0] != 15 || caps[2].at[1] != 90 {
		t.Fatalf("per-kind delays = %v, want [15 90]", caps[2].at)
	}
}
