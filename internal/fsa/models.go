package fsa

// Predefined protocol models matching the paper's figures. Message kind
// names follow the paper ("xact", "yes", "no", "prepare", "ack", "commit",
// "abort"); the four-phase protocol used by the Theorem 10 generalization
// adds "pre"/"preack".

// TwoPC is the two-phase commit protocol of Figure 1.
func TwoPC() *Protocol {
	return &Protocol{
		Name: "2pc",
		Master: Role{
			Name:    Master,
			Initial: "q1",
			States: []State{
				{Name: "q1"}, {Name: "w1"},
				{Name: "c1", Kind: KindCommit}, {Name: "a1", Kind: KindAbort},
			},
			Transitions: []Transition{
				{From: "q1", Recv: "", To: "w1", Sends: []Send{{Kind: "xact"}}},
				{From: "w1", Recv: "yes", RecvAll: true, To: "c1", Sends: []Send{{Kind: "commit"}}},
				{From: "w1", Recv: "no", To: "a1", Sends: []Send{{Kind: "abort"}}},
			},
		},
		Slave: Role{
			Name:    Slave,
			Initial: "q",
			States: []State{
				{Name: "q"}, {Name: "w"},
				{Name: "c", Kind: KindCommit}, {Name: "a", Kind: KindAbort},
			},
			Transitions: []Transition{
				{From: "q", Recv: "xact", To: "w", Sends: []Send{{Kind: "yes", ToMaster: true}}, VotesYes: true},
				{From: "q", Recv: "xact", To: "a", Sends: []Send{{Kind: "no", ToMaster: true}}},
				{From: "w", Recv: "commit", To: "c"},
				{From: "w", Recv: "abort", To: "a"},
			},
		},
	}
}

// ThreePC is the three-phase commit protocol of Figure 3. The modified
// variant of Figure 8 adds the slave transition w --commit--> c.
func ThreePC(modified bool) *Protocol {
	slaveTransitions := []Transition{
		{From: "q", Recv: "xact", To: "w", Sends: []Send{{Kind: "yes", ToMaster: true}}, VotesYes: true},
		{From: "q", Recv: "xact", To: "a", Sends: []Send{{Kind: "no", ToMaster: true}}},
		{From: "w", Recv: "prepare", To: "p", Sends: []Send{{Kind: "ack", ToMaster: true}}},
		{From: "w", Recv: "abort", To: "a"},
		{From: "p", Recv: "commit", To: "c"},
	}
	name := "3pc"
	if modified {
		slaveTransitions = append(slaveTransitions, Transition{From: "w", Recv: "commit", To: "c"})
		name = "3pc-mod"
	}
	return &Protocol{
		Name: name,
		Master: Role{
			Name:    Master,
			Initial: "q1",
			States: []State{
				{Name: "q1"}, {Name: "w1"}, {Name: "p1"},
				{Name: "c1", Kind: KindCommit}, {Name: "a1", Kind: KindAbort},
			},
			Transitions: []Transition{
				{From: "q1", Recv: "", To: "w1", Sends: []Send{{Kind: "xact"}}},
				{From: "w1", Recv: "yes", RecvAll: true, To: "p1", Sends: []Send{{Kind: "prepare"}}},
				{From: "w1", Recv: "no", To: "a1", Sends: []Send{{Kind: "abort"}}},
				{From: "p1", Recv: "ack", RecvAll: true, To: "c1", Sends: []Send{{Kind: "commit"}}},
			},
		},
		Slave: Role{
			Name:        Slave,
			Initial:     "q",
			States:      []State{{Name: "q"}, {Name: "w"}, {Name: "p"}, {Name: "c", Kind: KindCommit}, {Name: "a", Kind: KindAbort}},
			Transitions: slaveTransitions,
		},
	}
}

// FourPC is the four-phase generalization used by experiment E14: an extra
// buffered round ("pre"/"preack") between voting and the committable
// prepare round. It satisfies Lemma 1 and Lemma 2 exactly like 3PC, so by
// Theorem 10 the termination-protocol construction applies to it with
// "prepare" still the committable-transition message.
func FourPC() *Protocol {
	return &Protocol{
		Name: "4pc",
		Master: Role{
			Name:    Master,
			Initial: "q1",
			States: []State{
				{Name: "q1"}, {Name: "w1"}, {Name: "e1"}, {Name: "p1"},
				{Name: "c1", Kind: KindCommit}, {Name: "a1", Kind: KindAbort},
			},
			Transitions: []Transition{
				{From: "q1", Recv: "", To: "w1", Sends: []Send{{Kind: "xact"}}},
				{From: "w1", Recv: "yes", RecvAll: true, To: "e1", Sends: []Send{{Kind: "pre"}}},
				{From: "w1", Recv: "no", To: "a1", Sends: []Send{{Kind: "abort"}}},
				{From: "e1", Recv: "preack", RecvAll: true, To: "p1", Sends: []Send{{Kind: "prepare"}}},
				{From: "p1", Recv: "ack", RecvAll: true, To: "c1", Sends: []Send{{Kind: "commit"}}},
			},
		},
		Slave: Role{
			Name:    Slave,
			Initial: "q",
			States: []State{
				{Name: "q"}, {Name: "w"}, {Name: "e"}, {Name: "p"},
				{Name: "c", Kind: KindCommit}, {Name: "a", Kind: KindAbort},
			},
			Transitions: []Transition{
				{From: "q", Recv: "xact", To: "w", Sends: []Send{{Kind: "yes", ToMaster: true}}, VotesYes: true},
				{From: "q", Recv: "xact", To: "a", Sends: []Send{{Kind: "no", ToMaster: true}}},
				{From: "w", Recv: "pre", To: "e", Sends: []Send{{Kind: "preack", ToMaster: true}}},
				{From: "w", Recv: "abort", To: "a"},
				{From: "e", Recv: "prepare", To: "p", Sends: []Send{{Kind: "ack", ToMaster: true}}},
				{From: "e", Recv: "abort", To: "a"},
				{From: "p", Recv: "commit", To: "c"},
				{From: "w", Recv: "commit", To: "c"},
				{From: "e", Recv: "commit", To: "c"},
			},
		},
	}
}
