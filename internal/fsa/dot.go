package fsa

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the protocol's two automata as a Graphviz digraph, in the
// visual language of the paper's figures: commit states are doublecircled,
// abort states diamonds, transitions labelled "recv/send".
func (p *Protocol) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n", p.Name)
	for _, r := range []Role{p.Master, p.Slave} {
		fmt.Fprintf(&b, "  subgraph cluster_%s {\n    label=%q;\n", r.Name, r.Name)
		for _, s := range r.States {
			shape := "circle"
			switch s.Kind {
			case KindCommit:
				shape = "doublecircle"
			case KindAbort:
				shape = "diamond"
			}
			fmt.Fprintf(&b, "    %s_%s [label=%q shape=%s];\n", r.Name, s.Name, s.Name, shape)
		}
		for _, t := range r.Transitions {
			label := formatLabel(t)
			fmt.Fprintf(&b, "    %s_%s -> %s_%s [label=%q];\n",
				r.Name, t.From, r.Name, t.To, label)
		}
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func formatLabel(t Transition) string {
	recv := t.Recv
	if recv == "" {
		recv = "request"
	} else if t.RecvAll {
		recv = "all " + recv
	}
	var sends []string
	for _, s := range t.Sends {
		sends = append(sends, s.Kind)
	}
	if len(sends) == 0 {
		return recv + "/–"
	}
	return recv + "/" + strings.Join(sends, ",")
}

// Text renders a compact textual protocol listing (states and transitions
// per role) for terminal output.
func (p *Protocol) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "protocol %s\n", p.Name)
	for _, r := range []Role{p.Master, p.Slave} {
		fmt.Fprintf(&b, "  role %s (initial %s)\n", r.Name, r.Initial)
		names := make([]string, 0, len(r.States))
		for _, s := range r.States {
			n := s.Name
			if s.Kind != KindNone {
				n += "[" + s.Kind.String() + "]"
			}
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "    states: %s\n", strings.Join(names, " "))
		for _, t := range r.Transitions {
			fmt.Fprintf(&b, "    %-4s --%s--> %s\n", t.From, formatLabel(t), t.To)
		}
	}
	return b.String()
}
