package fsa

import (
	"strings"
	"testing"
)

func TestValidateAcceptsModels(t *testing.T) {
	for _, p := range []*Protocol{TwoPC(), ThreePC(false), ThreePC(true), FourPC()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateRejectsBadProtocols(t *testing.T) {
	bad := TwoPC()
	bad.Master.Initial = "zz"
	if bad.Validate() == nil {
		t.Error("undeclared initial state accepted")
	}

	dup := TwoPC()
	dup.Slave.States = append(dup.Slave.States, State{Name: "q"})
	if dup.Validate() == nil {
		t.Error("duplicate state accepted")
	}

	dangling := TwoPC()
	dangling.Master.Transitions = append(dangling.Master.Transitions,
		Transition{From: "w1", Recv: "yes", To: "nowhere"})
	if dangling.Validate() == nil {
		t.Error("transition to undeclared state accepted")
	}

	finalOut := TwoPC()
	finalOut.Master.Transitions = append(finalOut.Master.Transitions,
		Transition{From: "c1", Recv: "yes", To: "c1"})
	if finalOut.Validate() == nil {
		t.Error("outgoing transition from final state accepted")
	}
}

// --- E1: two-phase commit structure (Figure 1) ---

// For two sites, 2PC's slave wait state is committable (the only slave has
// voted) and its concurrency set holds a commit but no abort — so Rule(a)
// assigns timeout-to-commit and the extended protocol is sound.
func TestTwoPCTwoSiteStructure(t *testing.T) {
	a := Analyze(TwoPC(), 2)
	w := StateID{Slave, "w"}

	if !a.ConcurrencyContains(w, KindCommit) {
		t.Error("C(slave.w) should contain master.c1 for n=2")
	}
	if a.ConcurrencyContains(w, KindAbort) {
		t.Error("C(slave.w) should not contain an abort state for n=2")
	}
	if !a.Committable[w] {
		t.Error("slave.w is committable for n=2 (its occupant is the only voter)")
	}
	if got := a.RuleATimeout(w); got != KindCommit {
		t.Errorf("Rule(a) timeout for slave.w = %v, want commit", got)
	}
	if !a.SatisfiesLemmas() {
		t.Error("2PC with n=2 should satisfy both lemmas")
	}
}

// For three sites the paper's two facts appear: the slave wait state has
// both a commit and an abort in its concurrency set (fact 1, violating
// Lemma 1) and is noncommittable with a commit in its concurrency set
// (fact 2, violating Lemma 2).
func TestTwoPCMultisiteViolations(t *testing.T) {
	a := Analyze(TwoPC(), 3)
	w := StateID{Slave, "w"}

	if !a.ConcurrencyContains(w, KindCommit) || !a.ConcurrencyContains(w, KindAbort) {
		t.Fatalf("C(slave.w) = %v: want both commit and abort (paper fact 1)", a.ConcurrencySet(w))
	}
	if a.Committable[w] {
		t.Error("slave.w must be noncommittable for n=3 (paper fact 2)")
	}

	l1 := a.Lemma1Violations()
	if len(l1) == 0 {
		t.Fatal("no Lemma 1 violations found; paper requires slave.w")
	}
	found := false
	for _, id := range l1 {
		if id == w {
			found = true
		}
	}
	if !found {
		t.Errorf("Lemma 1 violations %v missing slave.w", l1)
	}

	l2 := a.Lemma2Violations()
	found = false
	for _, id := range l2 {
		if id == w {
			found = true
		}
	}
	if !found {
		t.Errorf("Lemma 2 violations %v missing slave.w", l2)
	}
	if a.SatisfiesLemmas() {
		t.Error("2PC with n=3 must fail the lemmas")
	}
}

// --- E4: three-phase commit structure (Figure 3) ---

func TestThreePCSatisfiesLemmas(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		for _, modified := range []bool{false, true} {
			a := Analyze(ThreePC(modified), n)
			if !a.SatisfiesLemmas() {
				t.Errorf("3PC(modified=%v) n=%d: lemma violations L1=%v L2=%v",
					modified, n, a.Lemma1Violations(), a.Lemma2Violations())
			}
		}
	}
}

func TestThreePCConcurrencySets(t *testing.T) {
	a := Analyze(ThreePC(false), 3)

	// The paper's Section 3 second observation needs: abort ∈ C(w_slave),
	// commit ∈ C(p_slave), p_slave ∈ C(w_slave).
	w, p := StateID{Slave, "w"}, StateID{Slave, "p"}
	if !a.ConcurrencyContains(w, KindAbort) {
		t.Error("abort should be in C(slave.w)")
	}
	if a.ConcurrencyContains(w, KindCommit) {
		t.Error("no commit may be in C(slave.w) — Lemma 2 for 3PC")
	}
	if !a.ConcurrencyContains(p, KindCommit) {
		t.Error("commit should be in C(slave.p)")
	}
	if a.ConcurrencyContains(p, KindAbort) {
		t.Error("no abort may be in C(slave.p) — Lemma 1 for 3PC")
	}
	if !a.Concurrency[w][p] {
		t.Error("slave.p should be in C(slave.w)")
	}

	// Rule(a) then derives exactly the assignments of the Section 3
	// counterexample: w times out to abort, p times out to commit.
	if got := a.RuleATimeout(w); got != KindAbort {
		t.Errorf("Rule(a) slave.w = %v, want abort", got)
	}
	if got := a.RuleATimeout(p); got != KindCommit {
		t.Errorf("Rule(a) slave.p = %v, want commit", got)
	}
	// And the master: no commit concurrent with w1 or p1.
	if got := a.RuleATimeout(StateID{Master, "w1"}); got != KindAbort {
		t.Errorf("Rule(a) master.w1 = %v, want abort", got)
	}
	if got := a.RuleATimeout(StateID{Master, "p1"}); got != KindAbort {
		t.Errorf("Rule(a) master.p1 = %v, want abort", got)
	}
}

func TestThreePCCommittability(t *testing.T) {
	a := Analyze(ThreePC(false), 3)
	want := map[StateID]bool{
		{Master, "q1"}: false,
		{Master, "w1"}: false,
		{Master, "p1"}: true,
		{Master, "c1"}: true,
		{Slave, "q"}:   false,
		{Slave, "w"}:   false,
		{Slave, "p"}:   true,
		{Slave, "c"}:   true,
	}
	for id, wantComm := range want {
		got, reachable := a.Committable[id]
		if !reachable {
			t.Errorf("%v unreachable", id)
			continue
		}
		if got != wantComm {
			t.Errorf("committable(%v) = %v, want %v", id, got, wantComm)
		}
	}
	// The abort states are reachable but never with all-yes... a1 via a
	// no-vote is definitionally noncommittable.
	if a.Committable[StateID{Slave, "a"}] {
		t.Error("slave.a should be noncommittable (reachable via no-vote)")
	}
}

func TestSenderSets(t *testing.T) {
	p := ThreePC(false)
	cases := []struct {
		id   StateID
		want []StateID
	}{
		{StateID{Slave, "w"}, []StateID{{Master, "w1"}}}, // prepare, abort sent from w1
		{StateID{Slave, "p"}, []StateID{{Master, "p1"}}}, // commit sent from p1
		{StateID{Master, "w1"}, []StateID{{Slave, "q"}}}, // yes/no sent from q
		{StateID{Master, "p1"}, []StateID{{Slave, "w"}}}, // ack sent from w
		{StateID{Slave, "q"}, []StateID{{Master, "q1"}}}, // xact sent from q1
		{StateID{Master, "q1"}, nil},                     // q1 receives nothing
	}
	for _, c := range cases {
		got := p.SenderSet(c.id)
		if len(got) != len(c.want) {
			t.Errorf("S(%v) = %v, want %v", c.id, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("S(%v) = %v, want %v", c.id, got, c.want)
			}
		}
	}
}

// --- E14 precondition: the four-phase protocol satisfies the lemmas ---

func TestFourPCSatisfiesLemmas(t *testing.T) {
	for _, n := range []int{2, 3} {
		a := Analyze(FourPC(), n)
		if !a.SatisfiesLemmas() {
			t.Errorf("4PC n=%d: L1=%v L2=%v", n, a.Lemma1Violations(), a.Lemma2Violations())
		}
		// The buffered state e is noncommittable: a slave can occupy e
		// while another slave has not yet sent preack... but all have
		// voted yes. Committability is about votes, so e IS committable.
		if !a.Committable[StateID{Slave, "e"}] {
			t.Error("slave.e should be committable (pre only sent after all yes)")
		}
		if !a.Committable[StateID{Slave, "p"}] {
			t.Error("slave.p should be committable")
		}
	}
}

func TestReachableCountsStable(t *testing.T) {
	// Sanity-check reachable-state counts and pin determinism: any change
	// to the models or the exploration is surfaced here.
	counts := map[string]int{}
	for _, c := range []struct {
		p *Protocol
		n int
	}{{TwoPC(), 2}, {TwoPC(), 3}, {ThreePC(false), 2}, {ThreePC(false), 3}, {FourPC(), 2}} {
		a := Analyze(c.p, c.n)
		counts[a.Protocol.Name+"/"+string(rune('0'+c.n))] = a.Reachable
		if a.Reachable < 5 {
			t.Errorf("%s n=%d: implausibly few reachable states (%d)", c.p.Name, c.n, a.Reachable)
		}
	}
	// Determinism: analyzing twice gives identical counts.
	again := Analyze(TwoPC(), 3).Reachable
	if counts["2pc/3"] != again {
		t.Errorf("reachability not deterministic: %d vs %d", counts["2pc/3"], again)
	}
}

func TestSummaryRendersLemmaVerdicts(t *testing.T) {
	good := Analyze(ThreePC(false), 3).Summary()
	if !strings.Contains(good, "Lemma 1 satisfied") || !strings.Contains(good, "Lemma 2 satisfied") {
		t.Errorf("3PC summary missing satisfied verdicts:\n%s", good)
	}
	bad := Analyze(TwoPC(), 3).Summary()
	if !strings.Contains(bad, "Lemma 1 VIOLATED") {
		t.Errorf("2PC summary missing violation verdict:\n%s", bad)
	}
}

func TestAnalyzePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("n=1 did not panic")
			}
		}()
		Analyze(TwoPC(), 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid protocol did not panic")
			}
		}()
		bad := TwoPC()
		bad.Master.Initial = "zz"
		Analyze(bad, 2)
	}()
}

func TestStateKindString(t *testing.T) {
	if KindCommit.String() != "commit" || KindAbort.String() != "abort" || KindNone.String() != "·" {
		t.Error("StateKind strings wrong")
	}
}

func TestDOTOutput(t *testing.T) {
	dot := ThreePC(false).DOT()
	for _, frag := range []string{
		"digraph", "cluster_master", "cluster_slave",
		"doublecircle", "diamond", "all yes/prepare", "xact/yes",
	} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q", frag)
		}
	}
}

func TestTextOutput(t *testing.T) {
	txt := TwoPC().Text()
	for _, frag := range []string{
		"protocol 2pc", "role master (initial q1)", "request/xact",
		"c1[commit]", "a[abort]",
	} {
		if !strings.Contains(txt, frag) {
			t.Errorf("Text missing %q", frag)
		}
	}
}
