// Package fsa implements the formal commit-protocol model of Skeen &
// Stonebraker that Section 2 of Huang & Li (ICDE 1987) builds on:
// transaction execution at each site is a finite state automaton, the
// network is a shared message pool, and a global state is the vector of
// local states plus the outstanding messages.
//
// The package computes, by exhaustive reachability over global states:
//
//   - concurrency sets C(s): every local state potentially concurrent with
//     s in some execution;
//   - sender sets S(s): the states that send messages receivable in s;
//   - the committable/noncommittable classification (a state is
//     committable iff its occupancy implies every site has voted yes);
//   - the Lemma 1 and Lemma 2 conditions for resilience to optimistic
//     multisite simple partitioning;
//   - the Rule(a) timeout-transition assignment derived from C(s).
//
// Experiments E1 and E4 use it to reproduce the paper's structural claims
// about two-phase and three-phase commit; cmd/protoviz dumps the automata
// and their analysis.
package fsa

import (
	"fmt"
	"sort"
	"strings"
)

// StateKind classifies a local state's decision.
type StateKind uint8

// State kinds.
const (
	KindNone   StateKind = iota // undecided
	KindCommit                  // a commit (final) state
	KindAbort                   // an abort (final) state
)

// String returns "·", "commit" or "abort".
func (k StateKind) String() string {
	switch k {
	case KindCommit:
		return "commit"
	case KindAbort:
		return "abort"
	default:
		return "·"
	}
}

// Role names.
const (
	Master = "master"
	Slave  = "slave"
)

// StateID names a local state within a role, e.g. {master, "w1"}.
type StateID struct {
	Role string
	Name string
}

// String formats like "master.w1".
func (s StateID) String() string { return s.Role + "." + s.Name }

// State is one local state of a role's automaton.
type State struct {
	Name string
	Kind StateKind
}

// Send describes one message emission of a transition.
type Send struct {
	Kind string
	// ToMaster sends to the master; otherwise the message is broadcast to
	// every slave (the two patterns centralized protocols need).
	ToMaster bool
}

// Transition is one local transition. A transition fires when its
// receive requirement is met: Recv == "" fires spontaneously (used for the
// master's initial "request"); RecvAll consumes one Recv-kind message from
// every slave (the master's vote/ack collection); otherwise it consumes a
// single Recv-kind message addressed to the site.
type Transition struct {
	From    string
	Recv    string
	RecvAll bool
	To      string
	Sends   []Send
	// VotesYes marks the slave's xact/yes transition, used for the
	// committable classification.
	VotesYes bool
}

// Role is one automaton (master or slave).
type Role struct {
	Name        string
	Initial     string
	States      []State
	Transitions []Transition
}

// State returns the named state and whether it exists.
func (r *Role) State(name string) (State, bool) {
	for _, s := range r.States {
		if s.Name == name {
			return s, true
		}
	}
	return State{}, false
}

// Protocol is a centralized master/slave commit protocol.
type Protocol struct {
	Name   string
	Master Role
	Slave  Role
}

// Validate checks structural sanity: states exist, transitions reference
// declared states, final states have no outgoing transitions.
func (p *Protocol) Validate() error {
	for _, r := range []Role{p.Master, p.Slave} {
		if _, ok := r.State(r.Initial); !ok {
			return fmt.Errorf("fsa: role %s initial state %q undeclared", r.Name, r.Initial)
		}
		seen := map[string]bool{}
		for _, s := range r.States {
			if seen[s.Name] {
				return fmt.Errorf("fsa: role %s duplicate state %q", r.Name, s.Name)
			}
			seen[s.Name] = true
		}
		for _, t := range r.Transitions {
			from, ok := r.State(t.From)
			if !ok {
				return fmt.Errorf("fsa: role %s transition from undeclared %q", r.Name, t.From)
			}
			if _, ok := r.State(t.To); !ok {
				return fmt.Errorf("fsa: role %s transition to undeclared %q", r.Name, t.To)
			}
			if from.Kind != KindNone {
				return fmt.Errorf("fsa: role %s final state %q has outgoing transition", r.Name, t.From)
			}
		}
	}
	return nil
}

// --- global-state reachability ---

// message is an outstanding message instance in the pool.
type message struct {
	kind string
	from int // site index (0 = master)
	to   int
}

// global is one global state: local state per site plus the message pool.
type global struct {
	locals []string
	voted  []bool // per slave site: has it voted yes
	pool   []message
}

func (g *global) key() string {
	var b strings.Builder
	b.WriteString(strings.Join(g.locals, ","))
	b.WriteByte('|')
	for _, v := range g.voted {
		if v {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	b.WriteByte('|')
	ms := make([]string, len(g.pool))
	for i, m := range g.pool {
		ms[i] = fmt.Sprintf("%s:%d>%d", m.kind, m.from, m.to)
	}
	sort.Strings(ms)
	b.WriteString(strings.Join(ms, ","))
	return b.String()
}

func (g *global) clone() *global {
	ng := &global{
		locals: append([]string(nil), g.locals...),
		voted:  append([]bool(nil), g.voted...),
		pool:   append([]message(nil), g.pool...),
	}
	return ng
}

// Analysis is the result of exhaustive reachability for a protocol with a
// fixed number of sites.
type Analysis struct {
	Protocol *Protocol
	N        int // sites, master included

	// Reachable is the number of distinct reachable global states.
	Reachable int

	// Concurrency maps each occupied StateID to its concurrency set.
	Concurrency map[StateID]map[StateID]bool

	// Committable maps each reachable StateID to its classification.
	Committable map[StateID]bool
}

// Analyze explores every reachable global state of p with n sites
// (1 master + n−1 slaves) and derives the structural sets. It panics on
// invalid protocols and n < 2; exploration is exact, so keep n small
// (2–4 covers every claim in the paper).
func Analyze(p *Protocol, n int) *Analysis {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if n < 2 {
		panic("fsa: need n >= 2")
	}
	a := &Analysis{
		Protocol:    p,
		N:           n,
		Concurrency: make(map[StateID]map[StateID]bool),
		Committable: make(map[StateID]bool),
	}

	init := &global{locals: make([]string, n), voted: make([]bool, n)}
	init.locals[0] = p.Master.Initial
	for i := 1; i < n; i++ {
		init.locals[i] = p.Slave.Initial
	}

	seen := map[string]*global{init.key(): init}
	queue := []*global{init}
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		for _, ng := range successors(p, n, g) {
			k := ng.key()
			if _, dup := seen[k]; !dup {
				seen[k] = ng
				queue = append(queue, ng)
			}
		}
	}
	a.Reachable = len(seen)

	// Derive concurrency sets and committability from the visited set.
	for _, g := range seen {
		ids := make([]StateID, n)
		allYes := true
		for i := 1; i < n; i++ {
			if !g.voted[i] {
				allYes = false
			}
		}
		for i := 0; i < n; i++ {
			ids[i] = stateID(i, g.locals[i])
		}
		for i := 0; i < n; i++ {
			set := a.Concurrency[ids[i]]
			if set == nil {
				set = make(map[StateID]bool)
				a.Concurrency[ids[i]] = set
			}
			for j := 0; j < n; j++ {
				if i != j {
					set[ids[j]] = true
				}
			}
			if was, seenState := a.Committable[ids[i]]; !seenState {
				a.Committable[ids[i]] = allYes
			} else if was && !allYes {
				a.Committable[ids[i]] = false
			}
		}
	}
	return a
}

func stateID(site int, name string) StateID {
	if site == 0 {
		return StateID{Master, name}
	}
	return StateID{Slave, name}
}

// successors returns every global state reachable in one global transition.
func successors(p *Protocol, n int, g *global) []*global {
	var out []*global
	for site := 0; site < n; site++ {
		role := &p.Slave
		if site == 0 {
			role = &p.Master
		}
		local := g.locals[site]
		for _, t := range role.Transitions {
			if t.From != local {
				continue
			}
			ng, ok := fire(p, n, g, site, t)
			if ok {
				out = append(out, ng)
			}
		}
	}
	return out
}

// fire attempts transition t at the given site, returning the successor.
func fire(p *Protocol, n int, g *global, site int, t Transition) (*global, bool) {
	ng := g.clone()
	switch {
	case t.Recv == "":
		// Spontaneous (the master's initial request).
	case t.RecvAll:
		// Consume one t.Recv message from every slave.
		need := make(map[int]bool)
		for i := 1; i < n; i++ {
			need[i] = true
		}
		var rest []message
		for _, m := range ng.pool {
			if need[m.from] && m.kind == t.Recv && m.to == site {
				delete(need, m.from)
				continue
			}
			rest = append(rest, m)
		}
		if len(need) != 0 {
			return nil, false
		}
		ng.pool = rest
	default:
		idx := -1
		for i, m := range ng.pool {
			if m.kind == t.Recv && m.to == site {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, false
		}
		ng.pool = append(ng.pool[:idx], ng.pool[idx+1:]...)
	}

	ng.locals[site] = t.To
	if t.VotesYes && site != 0 {
		ng.voted[site] = true
	}
	for _, s := range t.Sends {
		if s.ToMaster {
			ng.pool = append(ng.pool, message{kind: s.Kind, from: site, to: 0})
		} else {
			for i := 1; i < n; i++ {
				if i != site {
					ng.pool = append(ng.pool, message{kind: s.Kind, from: site, to: i})
				}
			}
		}
	}
	_ = p
	return ng, true
}

// --- derived structural queries ---

// kindOf returns the StateKind of a StateID within the protocol.
func (a *Analysis) kindOf(id StateID) StateKind {
	role := &a.Protocol.Slave
	if id.Role == Master {
		role = &a.Protocol.Master
	}
	s, ok := role.State(id.Name)
	if !ok {
		return KindNone
	}
	return s.Kind
}

// ConcurrencyContains reports whether C(id) contains a state of the given
// kind.
func (a *Analysis) ConcurrencyContains(id StateID, kind StateKind) bool {
	for other := range a.Concurrency[id] {
		if a.kindOf(other) == kind {
			return true
		}
	}
	return false
}

// Lemma1Violations returns the reachable states whose concurrency set
// contains both a commit and an abort state — the states Lemma 1 forbids.
func (a *Analysis) Lemma1Violations() []StateID {
	var out []StateID
	for id := range a.Concurrency {
		if a.ConcurrencyContains(id, KindCommit) && a.ConcurrencyContains(id, KindAbort) {
			out = append(out, id)
		}
	}
	sortIDs(out)
	return out
}

// Lemma2Violations returns the reachable noncommittable states whose
// concurrency set contains a commit state — the states Lemma 2 forbids.
func (a *Analysis) Lemma2Violations() []StateID {
	var out []StateID
	for id := range a.Concurrency {
		if !a.Committable[id] && a.ConcurrencyContains(id, KindCommit) {
			out = append(out, id)
		}
	}
	sortIDs(out)
	return out
}

// SatisfiesLemmas reports whether the protocol passes both Lemma 1 and
// Lemma 2 — the paper's necessary conditions for a resilient protocol.
func (a *Analysis) SatisfiesLemmas() bool {
	return len(a.Lemma1Violations()) == 0 && len(a.Lemma2Violations()) == 0
}

// RuleATimeout returns the Rule(a) timeout assignment for a non-final
// reachable state: commit if C(s) contains a commit state, abort
// otherwise.
func (a *Analysis) RuleATimeout(id StateID) StateKind {
	if a.ConcurrencyContains(id, KindCommit) {
		return KindCommit
	}
	return KindAbort
}

// SenderSet computes S(s): the states (of the other role) whose
// transitions send a message kind receivable in s. It is static — derived
// from transition structure, not reachability — matching the paper's
// definition over the protocol text.
func (p *Protocol) SenderSet(id StateID) []StateID {
	recvRole, sendRole := &p.Slave, &p.Master
	if id.Role == Master {
		recvRole, sendRole = &p.Master, &p.Slave
	}
	kinds := map[string]bool{}
	for _, t := range recvRole.Transitions {
		if t.From == id.Name && t.Recv != "" {
			kinds[t.Recv] = true
		}
	}
	var out []StateID
	seen := map[string]bool{}
	for _, t := range sendRole.Transitions {
		for _, s := range t.Sends {
			if kinds[s.Kind] && !seen[t.From] {
				seen[t.From] = true
				out = append(out, StateID{sendRole.Name, t.From})
			}
		}
	}
	sortIDs(out)
	return out
}

// ConcurrencySet returns C(id) in sorted order.
func (a *Analysis) ConcurrencySet(id StateID) []StateID {
	var out []StateID
	for other := range a.Concurrency[id] {
		out = append(out, other)
	}
	sortIDs(out)
	return out
}

// States returns every reachable StateID in sorted order.
func (a *Analysis) States() []StateID {
	var out []StateID
	for id := range a.Concurrency {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

func sortIDs(ids []StateID) {
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Role != ids[j].Role {
			return ids[i].Role < ids[j].Role
		}
		return ids[i].Name < ids[j].Name
	})
}

// Summary renders a human-readable analysis report.
func (a *Analysis) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "protocol %s, n=%d: %d reachable global states\n",
		a.Protocol.Name, a.N, a.Reachable)
	for _, id := range a.States() {
		comm := "noncommittable"
		if a.Committable[id] {
			comm = "committable"
		}
		kind := a.kindOf(id)
		if kind != KindNone {
			comm = kind.String() + " (final)"
		}
		fmt.Fprintf(&b, "  %-12s %-16s C=%v\n", id, comm, a.ConcurrencySet(id))
	}
	if v := a.Lemma1Violations(); len(v) > 0 {
		fmt.Fprintf(&b, "  Lemma 1 VIOLATED at %v\n", v)
	} else {
		fmt.Fprintf(&b, "  Lemma 1 satisfied\n")
	}
	if v := a.Lemma2Violations(); len(v) > 0 {
		fmt.Fprintf(&b, "  Lemma 2 VIOLATED at %v\n", v)
	} else {
		fmt.Fprintf(&b, "  Lemma 2 satisfied\n")
	}
	return b.String()
}
