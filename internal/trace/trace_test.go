package trace

import (
	"strings"
	"testing"

	"termproto/internal/sim"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Append(Event{Kind: Send}) // must not panic
	if r.Len() != 0 || r.Events() != nil || r.Dump() != "" {
		t.Fatal("nil recorder not inert")
	}
	if got := r.CrossDelivered("prepare"); got != 0 {
		t.Fatal("nil recorder counted")
	}
	if _, ok := r.FirstTime(func(Event) bool { return true }); ok {
		t.Fatal("nil recorder found an event")
	}
}

func TestAppendAndQuery(t *testing.T) {
	r := &Recorder{}
	r.Append(Event{At: 1, Kind: Send, MsgKind: "prepare", From: 1, To: 3, Cross: true})
	r.Append(Event{At: 2, Kind: Deliver, MsgKind: "prepare", From: 1, To: 2, Cross: false})
	r.Append(Event{At: 3, Kind: Bounce, MsgKind: "prepare", From: 1, To: 3, Cross: true})
	r.Append(Event{At: 4, Kind: Deliver, MsgKind: "ack", From: 2, To: 1, Cross: true})
	r.Append(Event{At: 5, Kind: Drop, MsgKind: "ack", From: 3, To: 1, Cross: true})

	if r.Len() != 5 {
		t.Fatalf("Len = %d", r.Len())
	}
	if got := r.CrossDelivered("prepare"); got != 0 {
		t.Fatalf("CrossDelivered(prepare) = %d, want 0 (the delivery was same-side)", got)
	}
	if got := r.CrossDelivered("ack"); got != 1 {
		t.Fatalf("CrossDelivered(ack) = %d, want 1", got)
	}
	if got := r.CrossFailed("prepare"); got != 1 {
		t.Fatalf("CrossFailed(prepare) = %d, want 1 (bounce)", got)
	}
	if got := r.CrossFailed("ack"); got != 1 {
		t.Fatalf("CrossFailed(ack) = %d, want 1 (drop)", got)
	}
	if got := len(r.Messages(Deliver, "")); got != 2 {
		t.Fatalf("Messages(Deliver, any) = %d, want 2", got)
	}
	if got := len(r.Messages(Deliver, "ack")); got != 1 {
		t.Fatalf("Messages(Deliver, ack) = %d", got)
	}
}

func TestFirstLastTime(t *testing.T) {
	r := &Recorder{}
	for i := 1; i <= 5; i++ {
		r.Append(Event{At: sim.Time(i), Kind: Deliver, MsgKind: "probe"})
	}
	first, ok := r.FirstTime(func(e Event) bool { return e.MsgKind == "probe" })
	if !ok || first != 1 {
		t.Fatalf("FirstTime = %d,%v", first, ok)
	}
	last, ok := r.LastTime(func(e Event) bool { return e.MsgKind == "probe" })
	if !ok || last != 5 {
		t.Fatalf("LastTime = %d,%v", last, ok)
	}
	if _, ok := r.FirstTime(func(e Event) bool { return e.MsgKind == "zz" }); ok {
		t.Fatal("found nonexistent event")
	}
}

func TestEventStrings(t *testing.T) {
	cases := []struct {
		e    Event
		want []string
	}{
		{Event{At: 10, Kind: Deliver, MsgKind: "prepare", From: 1, To: 3, TID: 7, Cross: true},
			[]string{"deliver", "prepare 1->3", "tid=7", "[crosses B]"}},
		{Event{At: 20, Kind: Transition, Site: 2, FromState: "w", ToState: "p"},
			[]string{"transition", "site=2", "w->p"}},
		{Event{At: 30, Kind: Decide, Site: 4, Outcome: "commit"},
			[]string{"decide", "site=4", "commit"}},
		{Event{At: 40, Kind: TimerFire, Site: 1},
			[]string{"timer-fire", "site=1"}},
		{Event{At: 50, Kind: Note, Detail: "hello"},
			[]string{"note", "(hello)"}},
	}
	for _, c := range cases {
		s := c.e.String()
		for _, frag := range c.want {
			if !strings.Contains(s, frag) {
				t.Errorf("%q missing %q", s, frag)
			}
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := map[EventKind]string{
		Send: "send", Deliver: "deliver", Bounce: "bounce", Drop: "drop",
		Transition: "transition", Decide: "decide", TimerSet: "timer-set",
		TimerFire: "timer-fire", TimerStop: "timer-stop",
		PartitionOn: "partition-on", PartitionOff: "partition-off",
		Crash: "crash", Note: "note", EventKind(99): "kind(99)",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("kind %d = %q, want %q", k, got, want)
		}
	}
}

func TestDumpOneLinePerEvent(t *testing.T) {
	r := &Recorder{}
	r.Append(Event{At: 1, Kind: Send, MsgKind: "xact", From: 1, To: 2})
	r.Append(Event{At: 2, Kind: Deliver, MsgKind: "xact", From: 1, To: 2})
	dump := r.Dump()
	if got := strings.Count(dump, "\n"); got != 2 {
		t.Fatalf("dump has %d lines, want 2:\n%s", got, dump)
	}
}

func TestFilter(t *testing.T) {
	r := &Recorder{}
	r.Append(Event{At: 1, Kind: Send})
	r.Append(Event{At: 2, Kind: Decide, Site: 3})
	got := r.Filter(func(e Event) bool { return e.Kind == Decide })
	if len(got) != 1 || got[0].Site != 3 {
		t.Fatalf("Filter = %v", got)
	}
}
