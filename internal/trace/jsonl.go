package trace

// JSONL trace export: one JSON object per line, a versioned header line
// first, then one event per line. The format is the interchange surface
// of the observability layer — termsim and termnode both write it with
// -trace-out, and offline tooling reads it back with ReadJSONL. The
// reader is hardened the same way the wire and directory codecs are:
// every line is bounded, the header is validated before any event is
// parsed, and unknown kinds or malformed JSON fail cleanly instead of
// panicking or silently skipping.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"termproto/internal/sim"
)

// JSONLVersion is the trace file format revision carried in the header
// line; readers reject files from any later revision.
const JSONLVersion = 1

// jsonlKind is the header's format discriminator.
const jsonlKind = "termproto-trace"

// MaxJSONLLine bounds one line of a trace file — far above any real
// event, a hard ceiling against adversarial input.
const MaxJSONLLine = 1 << 20

// jsonlHeader is the first line of every trace file.
type jsonlHeader struct {
	V    int    `json:"v"`
	Kind string `json:"kind"`
}

// jsonlEvent is Event's stable JSON shape. Kind crosses as its string
// name so files stay readable and stable if the internal enum reorders.
type jsonlEvent struct {
	At        int64  `json:"at"`
	Kind      string `json:"kind"`
	Site      int    `json:"site,omitempty"`
	From      int    `json:"from,omitempty"`
	To        int    `json:"to,omitempty"`
	MsgKind   string `json:"msg,omitempty"`
	TID       uint64 `json:"tid,omitempty"`
	Cross     bool   `json:"cross,omitempty"`
	FromState string `json:"from_state,omitempty"`
	ToState   string `json:"to_state,omitempty"`
	Outcome   string `json:"outcome,omitempty"`
	Detail    string `json:"detail,omitempty"`
}

// kindFromString is String's inverse, built over every declared kind.
var kindFromString = func() map[string]EventKind {
	m := make(map[string]EventKind)
	for k := Send; k <= QuorumEval; k++ {
		m[k.String()] = k
	}
	return m
}()

// WriteJSONL writes the events as a JSONL trace: the versioned header
// line, then one event per line, in order.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonlHeader{V: JSONLVersion, Kind: jsonlKind}); err != nil {
		return err
	}
	for _, e := range events {
		je := jsonlEvent{
			At: int64(e.At), Kind: e.Kind.String(), Site: e.Site,
			From: e.From, To: e.To, MsgKind: e.MsgKind, TID: e.TID,
			Cross: e.Cross, FromState: e.FromState, ToState: e.ToState,
			Outcome: e.Outcome, Detail: e.Detail,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONLFile writes the events to path, creating or truncating it.
func WriteJSONLFile(path string, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSONL(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadJSONLFile parses the JSONL trace at path.
func ReadJSONLFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSONL(f)
}

// ReadJSONL parses a JSONL trace back into events. The header line is
// validated first — wrong discriminator or a later version fails before
// any event is parsed — and every event line must carry a known kind.
// Blank lines are tolerated (a trailing newline is normal); anything
// else malformed is an error naming the offending line.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxJSONLLine)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("trace: reading header: %w", err)
		}
		return nil, fmt.Errorf("trace: empty input, want JSONL header")
	}
	var hdr jsonlHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("trace: bad header line: %w", err)
	}
	if hdr.Kind != jsonlKind {
		return nil, fmt.Errorf("trace: header kind %q, want %q", hdr.Kind, jsonlKind)
	}
	if hdr.V < 1 || hdr.V > JSONLVersion {
		return nil, fmt.Errorf("trace: file version %d, reader supports <= %d", hdr.V, JSONLVersion)
	}
	var out []Event
	line := 1
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(b, &je); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		kind, ok := kindFromString[je.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown event kind %q", line, je.Kind)
		}
		out = append(out, Event{
			At: sim.Time(je.At), Kind: kind, Site: je.Site,
			From: je.From, To: je.To, MsgKind: je.MsgKind, TID: je.TID,
			Cross: je.Cross, FromState: je.FromState, ToState: je.ToState,
			Outcome: je.Outcome, Detail: je.Detail,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: line %d: %w", line+1, err)
	}
	return out, nil
}
