// Package trace records structured execution traces of protocol runs.
//
// A trace is the ground truth the checkers and the Section 6 case classifier
// work from: every message send, delivery, bounce (undeliverable return),
// drop, state transition, decision and timer action is appended with its
// virtual timestamp. Traces are deterministic for a fixed scenario and seed,
// which the determinism tests pin.
package trace

import (
	"fmt"
	"strings"

	"termproto/internal/sim"
)

// EventKind classifies a trace event.
type EventKind uint8

// Trace event kinds.
const (
	Send         EventKind = iota + 1 // message handed to the network
	Deliver                           // message arrived at its destination
	Bounce                            // message returned undeliverable to sender
	Drop                              // message lost (pessimistic mode / dead site)
	Transition                        // automaton local-state change
	Decide                            // site decided commit or abort
	TimerSet                          // timer (re)armed
	TimerFire                         // timer expired
	TimerStop                         // timer cancelled
	PartitionOn                       // partition onset
	PartitionOff                      // partition healed
	Crash                             // site failed
	Recover                           // site recovered from a failure
	Note                              // free-form annotation

	// Partition-local availability events. These are observability-only
	// and deliberately invisible to the Section 6 classifier, which keys
	// on message-lifecycle kinds (Deliver/Bounce/Drop) alone.
	LeaseGrant  // site granted a lease on a shard at an epoch
	LeaseRenew  // a decision renewed a site's shard lease
	LeaseExpire // a shard lease lapsed without renewal
	QuorumEval  // a replica group's quorum was evaluated
)

// String returns the event kind name.
func (k EventKind) String() string {
	switch k {
	case Send:
		return "send"
	case Deliver:
		return "deliver"
	case Bounce:
		return "bounce"
	case Drop:
		return "drop"
	case Transition:
		return "transition"
	case Decide:
		return "decide"
	case TimerSet:
		return "timer-set"
	case TimerFire:
		return "timer-fire"
	case TimerStop:
		return "timer-stop"
	case PartitionOn:
		return "partition-on"
	case PartitionOff:
		return "partition-off"
	case Crash:
		return "crash"
	case Recover:
		return "recover"
	case Note:
		return "note"
	case LeaseGrant:
		return "lease-grant"
	case LeaseRenew:
		return "lease-renew"
	case LeaseExpire:
		return "lease-expire"
	case QuorumEval:
		return "quorum-eval"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one record in a trace. Message fields are flat ints/strings so
// the package has no dependency on the protocol layer.
type Event struct {
	At   sim.Time
	Kind EventKind

	// Site is the acting site (sender for Send, receiver for Deliver,
	// original sender for Bounce, the transitioning site, ...).
	Site int

	// Message fields, set for Send/Deliver/Bounce/Drop.
	From, To int
	MsgKind  string
	TID      uint64
	Cross    bool // the src/dst pair spans the partition boundary B

	// Transition/Decide fields.
	FromState, ToState string
	Outcome            string

	Detail string
}

// String formats the event for human-readable dumps.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8d %-12s", int64(e.At), e.Kind)
	switch e.Kind {
	case Send, Deliver, Bounce, Drop:
		fmt.Fprintf(&b, " %s %d->%d tid=%d", e.MsgKind, e.From, e.To, e.TID)
		if e.Cross {
			b.WriteString(" [crosses B]")
		}
	case Transition:
		fmt.Fprintf(&b, " site=%d %s->%s", e.Site, e.FromState, e.ToState)
	case Decide:
		fmt.Fprintf(&b, " site=%d %s", e.Site, e.Outcome)
	case TimerSet, TimerFire, TimerStop:
		fmt.Fprintf(&b, " site=%d", e.Site)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " (%s)", e.Detail)
	}
	return b.String()
}

// Recorder accumulates events. The zero value is ready to use. A nil
// *Recorder is also valid: all methods are no-ops, so tracing can be
// disabled without branching at call sites.
type Recorder struct {
	events []Event
}

// Append adds an event to the trace.
func (r *Recorder) Append(e Event) {
	if r == nil {
		return
	}
	r.events = append(r.events, e)
}

// Events returns the recorded events in order. The returned slice is the
// recorder's backing store; callers must not mutate it.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Dump renders the whole trace, one event per line.
func (r *Recorder) Dump() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, e := range r.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Filter returns the events satisfying keep, in order.
func (r *Recorder) Filter(keep func(Event) bool) []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for _, e := range r.events {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Messages returns message-lifecycle events (Send/Deliver/Bounce/Drop) of
// the given kind name; empty kind matches all kinds.
func (r *Recorder) Messages(eventKind EventKind, msgKind string) []Event {
	return r.Filter(func(e Event) bool {
		if e.Kind != eventKind {
			return false
		}
		return msgKind == "" || e.MsgKind == msgKind
	})
}

// CrossDelivered reports how many messages of the given kind were delivered
// across the partition boundary.
func (r *Recorder) CrossDelivered(msgKind string) int {
	n := 0
	for _, e := range r.Events() {
		if e.Kind == Deliver && e.Cross && e.MsgKind == msgKind {
			n++
		}
	}
	return n
}

// CrossFailed reports how many messages of the given kind bounced or were
// dropped at the boundary.
func (r *Recorder) CrossFailed(msgKind string) int {
	n := 0
	for _, e := range r.Events() {
		if (e.Kind == Bounce || e.Kind == Drop) && e.Cross && e.MsgKind == msgKind {
			n++
		}
	}
	return n
}

// FirstTime returns the time of the first event satisfying keep, and whether
// one exists.
func (r *Recorder) FirstTime(keep func(Event) bool) (sim.Time, bool) {
	for _, e := range r.Events() {
		if keep(e) {
			return e.At, true
		}
	}
	return 0, false
}

// LastTime returns the time of the last event satisfying keep, and whether
// one exists.
func (r *Recorder) LastTime(keep func(Event) bool) (sim.Time, bool) {
	evs := r.Events()
	for i := len(evs) - 1; i >= 0; i-- {
		if keep(evs[i]) {
			return evs[i].At, true
		}
	}
	return 0, false
}
