package trace

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"termproto/internal/sim"
)

// sampleEvents exercises every field and every declared kind at least
// once, including zero values that omitempty elides on the wire.
func sampleEvents() []Event {
	events := []Event{
		{At: 0, Kind: Send, Site: 1, From: 1, To: 3, MsgKind: "xact", TID: 7},
		{At: 250, Kind: Deliver, Site: 3, From: 1, To: 3, MsgKind: "xact", TID: 7, Cross: true},
		{At: 300, Kind: Transition, Site: 3, TID: 7, FromState: "q", ToState: "w"},
		{At: 900, Kind: Decide, Site: 1, TID: 7, Outcome: "commit"},
		{At: 1000, Kind: Note, Detail: "heal scheduled"},
	}
	for k := Send; k <= QuorumEval; k++ {
		events = append(events, Event{At: 2000 + sim.Time(k), Kind: k, Site: int(k)})
	}
	return events
}

// TestJSONLRoundTrip: WriteJSONL → ReadJSONL is the identity on every
// field of every kind.
func TestJSONLRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip diverged:\nwrote %+v\nread  %+v", events, got)
	}
}

// TestJSONLEmptyTrace: zero events is a valid trace — header only.
func TestJSONLEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, nil); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("read %d events from an empty trace", len(got))
	}
}

// TestJSONLFile round-trips through the file helpers termsim and
// termnode use.
func TestJSONLFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	events := sampleEvents()
	if err := WriteJSONLFile(path, events); err != nil {
		t.Fatalf("write file: %v", err)
	}
	got, err := ReadJSONLFile(path)
	if err != nil {
		t.Fatalf("read file: %v", err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatal("file round trip diverged")
	}
}

// TestJSONLHostileInput: malformed traces must fail with a clear error,
// never panic or silently skip.
func TestJSONLHostileInput(t *testing.T) {
	header := `{"v":1,"kind":"termproto-trace"}`
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"garbage header", "not json\n"},
		{"wrong kind", `{"v":1,"kind":"something-else"}` + "\n"},
		{"future version", `{"v":99,"kind":"termproto-trace"}` + "\n"},
		{"zero version", `{"v":0,"kind":"termproto-trace"}` + "\n"},
		{"events without header", `{"at":1,"kind":"send"}` + "\n"},
		{"unknown event kind", header + "\n" + `{"at":1,"kind":"quantum-leap"}` + "\n"},
		{"renumbered kind as int", header + "\n" + `{"at":1,"kind":3}` + "\n"},
		{"truncated event json", header + "\n" + `{"at":1,"kind":"send"` + "\n"},
		{"oversized line", header + "\n" + `{"detail":"` + strings.Repeat("x", MaxJSONLLine+1) + `"}` + "\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadJSONL(strings.NewReader(tc.input)); err == nil {
				t.Error("hostile input accepted")
			}
		})
	}
}

// TestJSONLTolerance: blank lines (including trailing newlines) are not
// errors, and event errors name the offending line.
func TestJSONLTolerance(t *testing.T) {
	header := `{"v":1,"kind":"termproto-trace"}`
	in := header + "\n\n" + `{"at":5,"kind":"send","site":1}` + "\n\n"
	got, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatalf("blank lines rejected: %v", err)
	}
	if len(got) != 1 || got[0].Kind != Send || got[0].At != 5 {
		t.Fatalf("read %+v", got)
	}

	bad := header + "\n" + `{"at":5,"kind":"send"}` + "\n" + `{"at":6,"kind":"warp"}` + "\n"
	_, err = ReadJSONL(strings.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error does not name line 3: %v", err)
	}
}

// FuzzTraceJSONL is the trace analogue of the wire codec fuzzer: any
// input either fails to parse cleanly or yields events that survive a
// write→read cycle unchanged — the decoded form is a fixed point.
func FuzzTraceJSONL(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteJSONL(&valid, sampleEvents()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	var empty bytes.Buffer
	WriteJSONL(&empty, nil) //nolint:errcheck
	f.Add(empty.Bytes())
	f.Add([]byte(`{"v":1,"kind":"termproto-trace"}` + "\n" + `{"at":1,"kind":"decide","outcome":"abort"}` + "\n"))
	f.Add([]byte(`{"v":2,"kind":"termproto-trace"}` + "\n"))
	f.Add([]byte("\x00\xff garbage"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, events); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		again, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatalf("re-decode of re-encoded trace failed: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("event count changed across cycle: %d -> %d", len(events), len(again))
		}
		for i := range events {
			if !reflect.DeepEqual(events[i], again[i]) {
				t.Fatalf("event %d changed across cycle:\n%+v\n%+v", i, events[i], again[i])
			}
		}
	})
}

// TestJSONLKindNamesStable pins the on-disk kind vocabulary: renaming an
// EventKind string is a format break, and this test is the tripwire.
func TestJSONLKindNamesStable(t *testing.T) {
	want := map[EventKind]string{
		Send: "send", Deliver: "deliver", Bounce: "bounce", Drop: "drop",
		Transition: "transition", Decide: "decide",
		TimerSet: "timer-set", TimerFire: "timer-fire", TimerStop: "timer-stop",
		PartitionOn: "partition-on", PartitionOff: "partition-off",
		Crash: "crash", Recover: "recover", Note: "note",
		LeaseGrant: "lease-grant", LeaseRenew: "lease-renew", LeaseExpire: "lease-expire",
		QuorumEval: "quorum-eval",
	}
	for k := Send; k <= QuorumEval; k++ {
		name, ok := want[k]
		if !ok {
			t.Fatalf("new kind %d has no pinned name — extend this test and bump care", k)
		}
		if k.String() != name {
			t.Errorf("kind %d = %q, want %q", k, k.String(), name)
		}
		if kindFromString[name] != k {
			t.Errorf("kindFromString[%q] = %v, want %v", name, kindFromString[name], k)
		}
	}
}
