// Package chaos generates, runs, and verifies randomized fault schedules.
// A single uint64 seed deterministically derives a complete scenario — a
// named family (happy-path, abort-heavy, timeout, stress,
// migration-under-partition), cluster shape, workload shape, and an
// ordinary cluster.Schedule composing partitions × crashes × membership
// churn — so every run is replayable from its seed alone, and the same
// scenario runs on the deterministic sim backend or (for net-compatible
// families) the real-process net backend.
//
// A run's evidence — the execution trace, transaction results, final
// engine snapshots and durable decision maps — feeds internal/check,
// which turns the paper's safety claims into machine-verified invariants.
package chaos

import (
	"fmt"
	"sort"

	"termproto/internal/check"
	"termproto/internal/cluster"
	"termproto/internal/db/engine"
	"termproto/internal/placement"
	"termproto/internal/proto"
	"termproto/internal/protocol/registry"
	"termproto/internal/sim"
	"termproto/internal/simnet"
	"termproto/internal/trace"
	"termproto/internal/workload"
)

// Family names a scenario family — a region of fault-schedule space with
// a characteristic failure signature.
type Family string

// The scenario families.
const (
	// HappyPath runs fault-free traffic: the baseline every invariant
	// must trivially hold on.
	HappyPath Family = "happy-path"
	// AbortHeavy mixes in transfers that violate the balance guard, so a
	// large fraction of transactions abort unilaterally — exercising
	// abort propagation, optionally under a transient partition.
	AbortHeavy Family = "abort-heavy"
	// Timeout injects exactly one partition during traffic — the paper's
	// simple-partitioning model — driving the §6 timeout cases.
	Timeout Family = "timeout"
	// Stress composes sequential transient partitions with crash/recover
	// churn over a sharded cluster under zipfian multi-op traffic.
	Stress Family = "stress"
	// Migration runs join/leave/move membership churn with a transient
	// partition overlapping the migrations.
	Migration Family = "migration-under-partition"
)

// Families lists the scenario families in generation order.
func Families() []Family {
	return []Family{HappyPath, AbortHeavy, Timeout, Stress, Migration}
}

// Scenario is one fully-determined chaos run. Every field derives from
// Seed; Run uses only the seed and these fields, so a scenario is
// replayable from the seed alone.
type Scenario struct {
	Seed   uint64
	Family Family
	// Protocol is the commit protocol's registry name.
	Protocol string
	Sites    int
	// Shards/RF configure sharded placement; Shards 0 is full replication.
	Shards int
	RF     int
	// Spare, when non-zero, is a provisioned site outside the initial
	// membership (it joins mid-run in the migration family).
	Spare    proto.SiteID
	Accounts int
	Balance  int64
	Txns     int
	Ops      int
	Zipf     float64
	// Spacing is the submission interval between transactions, in ticks.
	Spacing sim.Duration
	// BigEvery makes every k-th transfer exceed the total balance, so the
	// balance guard aborts it (0 = never) — the abort-heavy knob.
	BigEvery int
	// Schedule is the fault script. Every partition is transient and
	// every crash has a matching recover, so the run quiesces healed.
	Schedule cluster.Schedule
}

// String renders the scenario's headline in one line.
func (s Scenario) String() string {
	return fmt.Sprintf("seed=%d family=%s proto=%s sites=%d shards=%d rf=%d txns=%d events=%d",
		s.Seed, s.Family, s.Protocol, s.Sites, s.Shards, s.RF, s.Txns, len(s.Schedule))
}

// NetCompatible reports whether the scenario can run unchanged on the
// real-process net backend, which rejects directories past epoch 0 and
// all membership events.
func (s Scenario) NetCompatible() bool {
	if s.Shards > 0 {
		return false
	}
	for _, ev := range s.Schedule {
		switch ev.Kind {
		case cluster.EvJoin, cluster.EvLeave, cluster.EvMove:
			return false
		}
	}
	return true
}

// FromSeed derives the complete scenario a seed names: the family is the
// first draw, everything else follows from the same deterministic stream.
func FromSeed(seed uint64) Scenario {
	rng := sim.NewRand(seed)
	fams := Families()
	fam := fams[rng.Intn(len(fams))]
	return generate(seed, fam, rng)
}

// FromSeedIn is FromSeed restricted to one family (the family draw is
// still consumed, keeping the rest of the stream identical).
func FromSeedIn(seed uint64, fam Family) Scenario {
	rng := sim.NewRand(seed)
	rng.Intn(len(Families()))
	return generate(seed, fam, rng)
}

func generate(seed uint64, fam Family, rng *sim.Rand) Scenario {
	t := int64(sim.DefaultT)
	sc := Scenario{
		Seed:     seed,
		Family:   fam,
		Protocol: registry.Default,
		Sites:    4 + rng.Intn(3), // 4..6
		Accounts: 8 + rng.Intn(9), // 8..16
		Balance:  100,
		Txns:     8 + rng.Intn(9), // 8..16
		Ops:      2 + rng.Intn(2), // 2..3
		Zipf:     rng.Float64(),   // 0..1
		Spacing:  sim.Duration(t/2 + rng.Int63n(t)),
	}
	// The traffic window: submissions span [Spacing, Txns*Spacing].
	window := int64(sc.Spacing) * int64(sc.Txns)
	// onset draws a fault time inside the traffic window (after the first
	// submissions are in flight).
	onset := func() sim.Time { return sim.Time(t + rng.Int63n(window)) }
	// split draws a non-empty proper subset for a partition's G2.
	split := func(sites int) []proto.SiteID {
		var g2 []proto.SiteID
		for s := 2; s <= sites; s++ {
			if rng.Bool() {
				g2 = append(g2, proto.SiteID(s))
			}
		}
		if len(g2) == sites-1 {
			g2 = g2[:len(g2)-1]
		}
		if len(g2) == 0 {
			g2 = []proto.SiteID{proto.SiteID(sites)}
		}
		return g2
	}
	switch fam {
	case HappyPath:
		// Fault-free; rotate through the protocol set (safe without
		// partitions) to cross-check the invariants protocol-independently.
		sc.Protocol = []string{"2pc", "termination", "termination+transient"}[rng.Intn(3)]
	case AbortHeavy:
		sc.BigEvery = 2 + rng.Intn(2) // every 2nd..3rd transfer oversized
		switch rng.Intn(3) {
		case 1:
			at := onset()
			sc.Schedule = append(sc.Schedule,
				cluster.TransientPartitionAt(at, at+sim.Time(2*t+rng.Int63n(2*t)), split(sc.Sites)...))
		case 2:
			// A crash with no partition: crash-only is inside the
			// termination protocol's envelope (the recovered site resolves
			// in-doubt transactions via inquiry, and an absent master makes
			// slaves time out consistently because no prepare is partially
			// lost without a partition). The site restarts only after the
			// traffic drains: recovery catch-up is a one-shot snapshot
			// pull, so a mid-traffic restart would leave the site missing
			// writes of transactions still in flight at that instant (the
			// anti-entropy pass is a known open item).
			site := proto.SiteID(1 + rng.Intn(sc.Sites))
			sc.Schedule = append(sc.Schedule,
				cluster.CrashAt(onset(), site),
				cluster.RecoverAt(sim.Time(window+12*t), site))
		}
	case Timeout:
		// Exactly one transient partition and nothing else — the paper's
		// simple-partitioning model, the termination protocol's designed
		// envelope. §6 bounds are checked strictly here.
		at := onset()
		sc.Schedule = append(sc.Schedule,
			cluster.TransientPartitionAt(at, at+sim.Time(2*t+rng.Int63n(3*t)), split(sc.Sites)...))
	case Stress:
		// Partitions and crashes compose in sequence, never in overlap: a
		// master crashing in p1u mid-partition would let w-timeout aborts
		// race pt-timeout commits — that composition is outside the
		// paper's simple-partitioning model, where the termination
		// protocol's guarantees hold. Partitions live in the first half of
		// the traffic window, crashes strike in the second half (≥ 12T
		// after the last heal, past any partition-lengthened transaction
		// lifetime), and crashed sites restart after the traffic drains so
		// the one-shot catch-up pull sees stable donors.
		sc.Sites = 6 + rng.Intn(3)                     // 6..8
		sc.Txns = 20 + rng.Intn(5)                     // 20..24
		sc.Spacing = sim.Duration(2*t + rng.Int63n(t)) // stretch the window
		sc.Zipf = 0.9 + rng.Float64()*0.3
		sc.Ops = 3
		sc.Shards = sc.Sites
		sc.RF = 2 + rng.Intn(2) // 2..3
		window = int64(sc.Spacing) * int64(sc.Txns)
		// Two sequential transient partitions, separated by more than a
		// partition-lengthened transaction lifetime (~10T): the transient
		// fix guarantees consistency for a transaction that lives through
		// ONE partition, so no transaction may straddle both.
		first := sim.Time(t + rng.Int63n(window/8))
		heal1 := first + sim.Time(2*t+rng.Int63n(2*t))
		second := heal1 + sim.Time(12*t+rng.Int63n(2*t))
		heal2 := second + sim.Time(2*t+rng.Int63n(2*t))
		sc.Schedule = append(sc.Schedule,
			cluster.TransientPartitionAt(first, heal1, split(sc.Sites)...),
			cluster.TransientPartitionAt(second, heal2, split(sc.Sites)...))
		crashFrom := int64(heal2) + 12*t
		for i, site := range pickSpread(rng, sc.Sites, 1+rng.Intn(2), sc.RF) {
			down := crashFrom + rng.Int63n(window-crashFrom+t)
			// Staggered restarts: a recovering site must not pick a donor
			// that is itself mid-restart on the same tick.
			sc.Schedule = append(sc.Schedule,
				cluster.CrashAt(sim.Time(down), site),
				cluster.RecoverAt(sim.Time(window+12*t+int64(i)*2*t), site))
		}
	case Migration:
		sc.Sites = 5 + rng.Intn(2) // 5..6, last one spare
		sc.Shards = sc.Sites
		sc.RF = 2
		sc.Spare = proto.SiteID(sc.Sites)
		sc.Txns = 10 + rng.Intn(7)
		window = int64(sc.Spacing) * int64(sc.Txns)
		join := sim.Time(t + rng.Int63n(window/2))
		sc.Schedule = append(sc.Schedule, cluster.JoinAt(join, sc.Spare))
		if rng.Bool() {
			// A shard move after the join settles; source drawn from the
			// epoch-0 layout, so a stale source just fails the migration
			// cleanly — chaos includes invalid operator actions.
			shard := rng.Intn(sc.Shards)
			from := proto.SiteID(1 + (shard % (sc.Sites - 1)))
			sc.Schedule = append(sc.Schedule,
				cluster.MoveShardAt(join+sim.Time(3*t), shard, from, sc.Spare))
		}
		// The partition overlaps the membership churn.
		at := join + sim.Time(rng.Int63n(3*t))
		sc.Schedule = append(sc.Schedule,
			cluster.TransientPartitionAt(at, at+sim.Time(2*t+rng.Int63n(2*t)), split(sc.Sites)...))
		if rng.Bool() {
			leave := at + sim.Time(4*t+rng.Int63n(2*t))
			sc.Schedule = append(sc.Schedule, cluster.LeaveAt(leave, sc.Spare))
		}
	}
	sort.SliceStable(sc.Schedule, func(i, j int) bool { return sc.Schedule[i].At < sc.Schedule[j].At })
	return sc
}

// Result is one run's collected evidence, shaped for the checker.
type Result struct {
	Scenario Scenario
	Events   []trace.Event
	Results  []*cluster.TxnResult
	Stats    cluster.Stats
	// TransferTIDs lists the TIDs of the generated transfers (excluding
	// membership metadata transactions), ascending.
	TransferTIDs []uint64
	// Masters maps each transaction to its coordinating site.
	Masters map[uint64]int
	// Snapshots/Unstable/Durable are per-site engine state at quiescence.
	Snapshots map[int]map[string][]byte
	Unstable  map[int]map[string]bool
	Durable   map[int]map[uint64]string
	// Replicas/Primary resolve a key's replica set and authoritative copy
	// at the directory's final epoch (full replication: all sites, site 1).
	Replicas func(key string) []int
	Primary  func(key string) int
	// Keys are the account keys; Total is the conserved sum.
	Keys  []string
	Total int64
}

// Run executes the scenario on the deterministic sim backend and collects
// the checker's evidence. Identical seeds produce identical results.
func Run(sc Scenario) (*Result, error) {
	protocol, err := registry.Lookup(sc.Protocol)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	var dir *placement.Directory
	members := allSites(sc.Sites)
	if sc.Spare != 0 {
		members = members[:len(members)-1]
	}
	if sc.Shards > 0 {
		asg, err := placement.ArithmeticOver(sc.Shards, sc.RF, members)
		if err != nil {
			return nil, fmt.Errorf("chaos: %w", err)
		}
		dir = placement.NewDirectory(asg)
	}
	engines := workload.EnginesWith(dir, sc.Sites, sc.Accounts, sc.Balance, engine.Options{})
	parts := make(map[proto.SiteID]cluster.Participant, len(engines))
	for id, e := range engines {
		parts[id] = e
	}
	var policy cluster.MasterPolicy
	if dir == nil && sc.Seed%2 == 1 {
		policy = cluster.MasterRoundRobin()
	}
	backend := cluster.NewSimBackend(cluster.SimOptions{
		Seed:        sc.Seed,
		RecordTrace: true,
		Latency:     simnet.Uniform{Lo: sim.DefaultT / 3, Hi: sim.DefaultT},
	})
	c, err := cluster.Open(cluster.Config{
		Sites:        sc.Sites,
		Protocol:     protocol,
		Directory:    dir,
		Participants: parts,
		Recovery:     true,
		Schedule:     sc.Schedule,
		MasterPolicy: policy,
		Backend:      backend,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	defer c.Close()

	transfers, err := submitTraffic(c, sc, 0)
	if err != nil {
		return nil, err
	}
	if err := c.Wait(); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}

	r := &Result{
		Scenario: sc,
		Results:  c.Results(),
		Stats:    c.Stats(),
		Masters:  make(map[uint64]int),
		Keys:     accountKeys(sc.Accounts),
		Total:    int64(sc.Accounts) * sc.Balance,
	}
	for _, tid := range transfers {
		r.TransferTIDs = append(r.TransferTIDs, uint64(tid))
	}
	for _, res := range r.Results {
		r.Masters[uint64(res.TID)] = int(res.Master)
	}
	if rec := backend.Trace(); rec != nil {
		r.Events = rec.Events()
	}
	r.Snapshots = make(map[int]map[string][]byte, len(engines))
	r.Unstable = make(map[int]map[string]bool, len(engines))
	r.Durable = make(map[int]map[uint64]string, len(engines))
	for id, e := range engines {
		snap, unstable := e.StableSnapshot()
		r.Snapshots[int(id)] = snap
		r.Unstable[int(id)] = unstable
		durable := make(map[uint64]string)
		for _, res := range r.Results {
			if o, ok := e.Outcome(uint64(res.TID)); ok {
				durable[uint64(res.TID)] = o.String()
			}
		}
		r.Durable[int(id)] = durable
	}
	if d := c.Directory(); d != nil {
		_, asg := d.Current()
		r.Replicas = func(key string) []int {
			reps := asg.Replicas(asg.ShardOf(key))
			out := make([]int, len(reps))
			for i, id := range reps {
				out[i] = int(id)
			}
			return out
		}
		r.Primary = func(key string) int { return int(asg.Primary(asg.ShardOf(key))) }
	} else {
		r.Primary = func(string) int { return 1 }
	}
	return r, nil
}

// submitTraffic generates and submits the scenario's transfers, each At
// base + i*Spacing. It returns the transfer TIDs in submission order.
func submitTraffic(c *cluster.Cluster, sc Scenario, base sim.Time) ([]proto.TxnID, error) {
	rng := sim.NewRand(sc.Seed + 0xc4a05)
	zipf := workload.NewZipf(sc.Accounts, sc.Zipf)
	ops := sc.Ops
	if ops < 2 {
		ops = 2
	}
	if ops > sc.Accounts {
		ops = sc.Accounts
	}
	var tids []proto.TxnID
	for i := 1; i <= sc.Txns; i++ {
		chain := zipf.DrawDistinct(rng, ops)
		amount := int64(1 + rng.Intn(40))
		if sc.BigEvery > 0 && i%sc.BigEvery == 0 {
			// Exceeds the whole money supply: the balance guard at the
			// debited account votes no, aborting unilaterally.
			amount = sc.Balance*int64(sc.Accounts) + 1
		}
		payload := engine.EncodeOps(workload.ChainOps(chain, amount))
		res, err := c.Submit(cluster.Txn{
			Payload: payload,
			At:      base + sim.Time(int64(sc.Spacing)*int64(i)),
		})
		if err != nil {
			return nil, fmt.Errorf("chaos: submit txn %d: %w", i, err)
		}
		tids = append(tids, res.TID)
	}
	return tids, nil
}

// pickSpread draws up to k distinct sites from 1..n, no two of which
// co-host a shard under arithmetic placement (ring distance ≥ rf): every
// shard keeps a live replica, so each recovering site finds an up donor
// for catch-up regardless of restart order.
func pickSpread(rng *sim.Rand, n, k, rf int) []proto.SiteID {
	var out []proto.SiteID
	for _, p := range rng.Perm(n) {
		ok := true
		for _, prev := range out {
			d := int(prev) - 1 - p
			if d < 0 {
				d = -d
			}
			if d < rf || n-d < rf {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, proto.SiteID(p+1))
			if len(out) == k {
				break
			}
		}
	}
	return out
}

func allSites(n int) []proto.SiteID {
	out := make([]proto.SiteID, n)
	for i := range out {
		out[i] = proto.SiteID(i + 1)
	}
	return out
}

func accountKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("acct/%d", i)
	}
	return out
}

// CheckInput shapes the run's evidence for the offline checker.
func (r *Result) CheckInput() check.Input {
	return check.Input{
		Events:    r.Events,
		Masters:   r.Masters,
		Snapshots: r.Snapshots,
		Unstable:  r.Unstable,
		Replicas:  r.Replicas,
		Durable:   r.Durable,
		Conservation: &check.Conservation{
			Keys:    r.Keys,
			Primary: r.Primary,
			Total:   r.Total,
		},
	}
}

// Verify runs the full invariant suite over the run: the trace/state
// checker plus the result-level completeness checks (every transaction
// decided at every live participant, consistently). It returns every
// violation found; an empty slice is the protocol keeping its promise.
func Verify(r *Result) []check.Violation {
	out := check.Check(r.CheckInput())
	return append(out, resultViolations(r)...)
}

// resultViolations runs the result-level completeness checks: every
// transaction decided at every live participant, consistently.
func resultViolations(r *Result) []check.Violation {
	var out []check.Violation
	for _, res := range r.Results {
		tid := uint64(res.TID)
		if !res.Consistent() {
			out = append(out, check.Violation{
				Rule: check.RuleAgreement, TID: tid,
				Detail: "result outcome set inconsistent across sites",
				Events: check.SubHistory(r.Events, tid),
			})
		}
		if b := res.Blocked(); len(b) > 0 {
			out = append(out, check.Violation{
				Rule: check.RuleAgreement, TID: tid,
				Detail: fmt.Sprintf("blocked at sites %v at quiescence", b),
				Events: check.SubHistory(r.Events, tid),
			})
		}
	}
	return out
}
