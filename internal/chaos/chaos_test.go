package chaos

import (
	"reflect"
	"testing"
)

// A seed fully determines its scenario: generation is pure.
func TestFromSeedDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		a, b := FromSeed(seed), FromSeed(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: scenarios differ:\n%+v\n%+v", seed, a, b)
		}
	}
}

// Every family is reachable from the seed space.
func TestFamilyCoverage(t *testing.T) {
	got := map[Family]bool{}
	for seed := uint64(1); seed <= 64; seed++ {
		got[FromSeed(seed).Family] = true
	}
	for _, f := range Families() {
		if !got[f] {
			t.Errorf("family %s never generated in 64 seeds", f)
		}
	}
}

// Replays are bit-identical: the same seed twice yields the same trace,
// event for event — the property that makes `termchaos -replay` useful.
func TestRunDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		r1, err := Run(FromSeed(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r2, err := Run(FromSeed(seed))
		if err != nil {
			t.Fatalf("seed %d replay: %v", seed, err)
		}
		if len(r1.Events) != len(r2.Events) {
			t.Fatalf("seed %d: %d events vs %d on replay", seed, len(r1.Events), len(r2.Events))
		}
		for i := range r1.Events {
			if r1.Events[i] != r2.Events[i] {
				t.Fatalf("seed %d event %d differs:\n%+v\n%+v", seed, i, r1.Events[i], r2.Events[i])
			}
		}
		if !reflect.DeepEqual(r1.Snapshots, r2.Snapshots) {
			t.Fatalf("seed %d: final snapshots differ on replay", seed)
		}
	}
}

// The generated fault space is safe: every scenario in the corpus runs,
// terminates, and passes the full invariant suite. CI runs a much larger
// corpus through cmd/termchaos; this is the in-tree floor.
func TestCorpusNoViolations(t *testing.T) {
	n := uint64(400)
	if testing.Short() {
		n = 60
	}
	fams := map[Family]int{}
	for seed := uint64(1); seed <= n; seed++ {
		sc := FromSeed(seed)
		fams[sc.Family]++
		r, err := Run(sc)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sc, err)
		}
		if v := Verify(r); len(v) > 0 {
			t.Errorf("seed %d (%s): %d violations; first: %s", seed, sc, len(v), v[0])
		}
	}
	t.Logf("families: %v", fams)
}

// Scenario.NetCompatible matches what the net backend accepts: full
// replication, no membership events.
func TestNetCompatible(t *testing.T) {
	anyCompat := false
	for seed := uint64(1); seed <= 100; seed++ {
		sc := FromSeed(seed)
		compat := sc.NetCompatible()
		if sc.Family == Migration || sc.Family == Stress {
			if compat {
				t.Errorf("seed %d: %s marked net-compatible", seed, sc.Family)
			}
		} else {
			anyCompat = true
		}
		if compat && sc.Shards > 0 {
			t.Errorf("seed %d: sharded scenario marked net-compatible", seed)
		}
	}
	if !anyCompat {
		t.Error("no net-compatible scenarios in 100 seeds")
	}
}
