package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"termproto/internal/check"
	"termproto/internal/cluster"
	"termproto/internal/db/engine"
	"termproto/internal/protocol/registry"
	"termproto/internal/sim"
	"termproto/internal/trace"
)

// netPreBase shifts a net run's schedule and traffic past the account
// seeding round: the backend's fault timers start at Open, but accounts
// load through an ordinary transaction first.
const netPreBase = sim.Time(10 * sim.DefaultT)

// RunNet executes a net-compatible scenario on the real-process backend:
// one termnode daemon per site, TCP wire protocol, real fault injection
// (socket partitions, SIGKILL). Wire-level traces come from the daemons'
// -trace-out files, merged across nodes; state evidence comes from the
// admin API before shutdown. Timing on a real network is not
// tick-deterministic, so the checker runs with SkipBounds — RunNet
// validates that the protocol's safety holds off the simulator, not that
// the replay is bit-identical.
func RunNet(sc Scenario, workdir string) (*Result, error) {
	if !sc.NetCompatible() {
		return nil, fmt.Errorf("chaos: scenario %d (%s) is not net-compatible", sc.Seed, sc.Family)
	}
	shifted := make(cluster.Schedule, len(sc.Schedule))
	for i, ev := range sc.Schedule {
		ev.At += netPreBase
		if ev.Heal > 0 {
			ev.Heal += netPreBase
		}
		shifted[i] = ev
	}
	backend := cluster.NewNetBackend(cluster.NetOptions{
		ProtoName: sc.Protocol,
		Workdir:   workdir,
		Seed:      int64(sc.Seed),
		ExtraArgs: []string{"-trace-out", "trace.jsonl"},
	})
	p, err := registry.Lookup(sc.Protocol)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	c, err := cluster.Open(cluster.Config{
		Sites:    sc.Sites,
		Protocol: p,
		Backend:  backend,
		Schedule: shifted,
		Recovery: true,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	defer c.Close()

	// Seed the accounts through the cluster itself, the way an operator
	// loads fixtures over the API; daemons start with empty engines.
	ops := make([]engine.Op, sc.Accounts)
	for a := range ops {
		ops[a] = engine.Op{Kind: engine.OpPut, Key: fmt.Sprintf("acct/%d", a), Value: engine.EncodeInt(sc.Balance)}
	}
	if _, err := c.Submit(cluster.Txn{Payload: engine.EncodeOps(ops)}); err != nil {
		return nil, fmt.Errorf("chaos: seeding accounts: %w", err)
	}
	if err := c.Wait(); err != nil {
		return nil, fmt.Errorf("chaos: seeding accounts: %w", err)
	}

	transfers, err := submitTraffic(c, sc, netPreBase)
	if err != nil {
		return nil, err
	}
	if err := c.Wait(); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}

	r := &Result{
		Scenario: sc,
		Results:  c.Results(),
		Stats:    c.Stats(),
		Masters:  make(map[uint64]int),
		Keys:     accountKeys(sc.Accounts),
		Total:    int64(sc.Accounts) * sc.Balance,
		Primary:  func(string) int { return 1 },
	}
	for _, tid := range transfers {
		r.TransferTIDs = append(r.TransferTIDs, uint64(tid))
	}
	for _, res := range r.Results {
		r.Masters[uint64(res.TID)] = int(res.Master)
	}
	// State evidence must precede Close (the admin APIs die with the
	// daemons); traces are written BY Close (each node exports at
	// graceful shutdown).
	r.Snapshots = make(map[int]map[string][]byte)
	for id, snap := range backend.Snapshots() {
		r.Snapshots[int(id)] = snap
	}
	if err := c.Close(); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	r.Events = mergeNodeTraces(backend.Workdir(), sc.Sites)
	return r, nil
}

// mergeNodeTraces reads every node's trace.jsonl under the localnet root
// and merges them into one timeline. Nodes that died without exporting
// (SIGKILL) simply contribute nothing.
func mergeNodeTraces(workdir string, sites int) []trace.Event {
	var all []trace.Event
	for id := 1; id <= sites; id++ {
		path := filepath.Join(workdir, fmt.Sprintf("node-%d", id), "trace.jsonl")
		if _, err := os.Stat(path); err != nil {
			continue
		}
		evs, err := trace.ReadJSONLFile(path)
		if err != nil {
			continue
		}
		all = append(all, evs...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
	return all
}

// VerifyNet runs the invariant suite appropriate for a real-network run:
// trace timing is wall-clock so §6 bounds are skipped, and per-site
// durable decision maps are not exported over the admin API, but
// agreement, convergence, conservation and the result-level completeness
// checks all engage.
func VerifyNet(r *Result) []check.Violation {
	in := r.CheckInput()
	in.SkipBounds = true
	in.Durable = nil
	out := check.Check(in)
	return append(out, resultViolations(r)...)
}
