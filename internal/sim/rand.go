package sim

// Rand is a small deterministic pseudo-random generator (SplitMix64).
// The experiments need reproducible randomness that is independent of the
// Go release's math/rand internals, so seeds recorded in EXPERIMENTS.md
// regenerate identical runs forever.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Duration returns a uniform Duration in [lo, hi]. It panics if lo > hi.
func (r *Rand) Duration(lo, hi Duration) Duration {
	if lo > hi {
		panic("sim: Duration with lo > hi")
	}
	if lo == hi {
		return lo
	}
	return lo + Duration(r.Int63n(int64(hi-lo)+1))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a pseudo-random boolean.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Split derives an independent generator; use it to give each subsystem its
// own stream so adding draws in one place does not perturb another.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64() ^ 0xd1b54a32d192ed03)
}
