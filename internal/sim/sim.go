// Package sim provides a deterministic discrete-event simulator.
//
// The simulator is the substrate on which the commit-protocol experiments
// run. Virtual time is an abstract integer tick count; the network layer
// conventionally sets the longest end-to-end propagation delay T to
// DefaultT ticks, so the paper's timeout windows (2T, 3T, 5T, 6T) are exact
// integer multiples.
//
// Determinism contract: events are executed in ascending (time, priority,
// sequence) order. Priority exists because the Huang–Li timing analysis is
// sensitive to ties at a timestamp: an undeliverable-message return that
// arrives exactly when a timer expires must be processed before the timer
// (see DESIGN.md §5.1). Sequence numbers break remaining ties in scheduling
// order, so a run is a pure function of its inputs and seed.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, measured in ticks since the start of the
// run. Negative times are never scheduled.
type Time int64

// Duration is a span of virtual time in ticks.
type Duration int64

// DefaultT is the conventional value, in ticks, of the longest end-to-end
// network propagation delay T used throughout the experiments. One tick is
// then T/1000, fine enough to place partition onsets between any two
// protocol events.
const DefaultT Duration = 1000

// Priority orders events that share a timestamp. Lower runs first.
type Priority uint8

// Priorities for same-timestamp events. Deliveries run before partition
// edges so a message arriving exactly at partition onset is considered to
// have beaten the partition; partition edges run before timers so that an
// undeliverable return scheduled at a timer's deadline is observed by the
// automaton before the timer fires.
const (
	PriDeliver   Priority = 10 // message and undeliverable-notice deliveries
	PriPartition Priority = 20 // partition onset / heal edges
	PriTimer     Priority = 30 // timer expirations
	PriControl   Priority = 40 // harness bookkeeping (checks, snapshots)
)

// Event is a scheduled callback.
type event struct {
	at   Time
	pri  Priority
	seq  uint64
	fn   func()
	dead bool // cancelled
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ e *event }

// Scheduler executes events in deterministic virtual-time order.
// The zero value is not usable; call NewScheduler.
type Scheduler struct {
	now         Time
	seq         uint64
	heap        eventHeap
	executed    uint64
	stopped     bool
	timersFirst bool
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// SetTimersFirst flips the same-timestamp ordering so timers run BEFORE
// message deliveries. The paper's timeout analysis silently depends on the
// opposite order (an undeliverable return landing exactly at a timer
// deadline must be seen first); this switch exists so experiment E15 can
// demonstrate the inconsistency that appears without it. It affects events
// scheduled after the call.
func (s *Scheduler) SetTimersFirst(on bool) { s.timersFirst = on }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Executed reports how many events have run so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// Pending reports how many scheduled events have not yet run (including
// cancelled events not yet reaped).
func (s *Scheduler) Pending() int {
	n := 0
	for _, e := range s.heap {
		if !e.dead {
			n++
		}
	}
	return n
}

// At schedules fn to run at absolute time t with the given priority.
// Scheduling in the past (t < Now) panics: it would violate causality and
// always indicates a harness bug.
func (s *Scheduler) At(t Time, pri Priority, fn func()) EventID {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	if s.timersFirst && pri == PriTimer {
		pri = PriDeliver - 1
	}
	e := &event{at: t, pri: pri, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.heap, e)
	return EventID{e}
}

// After schedules fn to run d ticks from now. Negative d panics.
func (s *Scheduler) After(d Duration, pri Priority, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return s.At(s.now+Time(d), pri, fn)
}

// Cancel marks a previously scheduled event so it will not run. Cancelling
// an already-executed or already-cancelled event is a no-op.
func (s *Scheduler) Cancel(id EventID) {
	if id.e != nil {
		id.e.dead = true
	}
}

// Stop makes the current Run call return after the in-flight event finishes.
func (s *Scheduler) Stop() { s.stopped = true }

// Step executes the single next pending event, if any, and reports whether
// one was executed.
func (s *Scheduler) Step() bool {
	for s.heap.Len() > 0 {
		e := heap.Pop(&s.heap).(*event)
		if e.dead {
			continue
		}
		s.now = e.at
		s.executed++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
// It returns the number of events executed by this call.
func (s *Scheduler) Run() uint64 {
	return s.RunUntil(-1)
}

// RunUntil executes events whose time is <= deadline (deadline < 0 means no
// limit) until the queue drains or Stop is called. Events scheduled beyond
// the deadline remain pending. It returns the number of events executed.
func (s *Scheduler) RunUntil(deadline Time) uint64 {
	s.stopped = false
	var n uint64
	for !s.stopped {
		if s.heap.Len() == 0 {
			break
		}
		if deadline >= 0 && s.heap[0].at > deadline {
			break
		}
		if s.Step() {
			n++
		}
	}
	return n
}

// eventHeap implements container/heap ordered by (at, pri, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.seq < b.seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
