package sim

import (
	"testing"
	"testing/quick"
)

func TestSchedulerRunsInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var got []Time
	for _, at := range []Time{30, 10, 20, 10, 0} {
		at := at
		s.At(at, PriDeliver, func() { got = append(got, at) })
	}
	s.Run()
	want := []Time{0, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d at time %d, want %d (order %v)", i, got[i], want[i], got)
		}
	}
}

func TestSchedulerPriorityAtSameTime(t *testing.T) {
	s := NewScheduler()
	var order []string
	s.At(5, PriTimer, func() { order = append(order, "timer") })
	s.At(5, PriDeliver, func() { order = append(order, "deliver") })
	s.At(5, PriPartition, func() { order = append(order, "partition") })
	s.Run()
	want := []string{"deliver", "partition", "timer"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSchedulerFIFOWithinPriority(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(7, PriDeliver, func() { order = append(order, i) })
	}
	s.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time same-priority events ran out of scheduling order: %v", order)
		}
	}
}

func TestSchedulerAfterAndNow(t *testing.T) {
	s := NewScheduler()
	var at1, at2 Time
	s.After(100, PriDeliver, func() {
		at1 = s.Now()
		s.After(50, PriDeliver, func() { at2 = s.Now() })
	})
	s.Run()
	if at1 != 100 || at2 != 150 {
		t.Fatalf("Now at events = %d, %d; want 100, 150", at1, at2)
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	ran := false
	id := s.At(10, PriDeliver, func() { ran = true })
	s.Cancel(id)
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if got := s.Executed(); got != 0 {
		t.Fatalf("Executed = %d, want 0", got)
	}
}

func TestSchedulerCancelIdempotent(t *testing.T) {
	s := NewScheduler()
	id := s.At(10, PriDeliver, func() {})
	s.Cancel(id)
	s.Cancel(id)
	s.Cancel(EventID{}) // zero value must be harmless
	s.Run()
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var ran []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		s.At(at, PriDeliver, func() { ran = append(ran, at) })
	}
	n := s.RunUntil(25)
	if n != 2 || len(ran) != 2 {
		t.Fatalf("RunUntil(25) executed %d events (%v), want 2", n, ran)
	}
	if s.Now() != 20 {
		t.Fatalf("Now = %d after RunUntil(25), want 20", s.Now())
	}
	n = s.RunUntil(-1)
	if n != 2 {
		t.Fatalf("second RunUntil executed %d, want 2", n)
	}
	if s.Now() != 40 {
		t.Fatalf("Now = %d, want 40", s.Now())
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 0; i < 5; i++ {
		s.At(Time(i), PriDeliver, func() {
			count++
			if count == 2 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 2 {
		t.Fatalf("Stop did not halt run: executed %d", count)
	}
	// A later Run resumes.
	s.Run()
	if count != 5 {
		t.Fatalf("resumed run executed %d total, want 5", count)
	}
}

func TestSchedulerPanicsOnPast(t *testing.T) {
	s := NewScheduler()
	s.At(10, PriDeliver, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, PriDeliver, func() {})
	})
	s.Run()
}

func TestSchedulerPanicsOnNilFn(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil fn did not panic")
		}
	}()
	NewScheduler().At(0, PriDeliver, nil)
}

func TestSchedulerPanicsOnNegativeAfter(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	NewScheduler().After(-1, PriDeliver, func() {})
}

func TestSchedulerPending(t *testing.T) {
	s := NewScheduler()
	a := s.At(1, PriDeliver, func() {})
	s.At(2, PriDeliver, func() {})
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	s.Cancel(a)
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", got)
	}
	s.Run()
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending after run = %d, want 0", got)
	}
}

// Property: for any batch of (time, priority) pairs, execution order is the
// stable sort by (time, priority).
func TestSchedulerOrderProperty(t *testing.T) {
	f := func(times []uint16, pris []uint8) bool {
		if len(times) == 0 {
			return true
		}
		s := NewScheduler()
		type key struct {
			at  Time
			pri Priority
			seq int
		}
		var scheduled []key
		var got []key
		for i, tm := range times {
			pri := PriDeliver
			if len(pris) > 0 {
				switch pris[i%len(pris)] % 3 {
				case 1:
					pri = PriPartition
				case 2:
					pri = PriTimer
				}
			}
			k := key{Time(tm), pri, i}
			scheduled = append(scheduled, k)
			s.At(k.at, k.pri, func() { got = append(got, k) })
		}
		s.Run()
		if len(got) != len(scheduled) {
			return false
		}
		for i := 1; i < len(got); i++ {
			a, b := got[i-1], got[i]
			if a.at > b.at {
				return false
			}
			if a.at == b.at && a.pri > b.pri {
				return false
			}
			if a.at == b.at && a.pri == b.pri && a.seq > b.seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 64; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same == 64 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) hit only %d distinct values in 10k draws", len(seen))
	}
}

func TestRandDurationBounds(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		d := r.Duration(5, 15)
		if d < 5 || d > 15 {
			t.Fatalf("Duration(5,15) = %d out of range", d)
		}
	}
	if d := r.Duration(8, 8); d != 8 {
		t.Fatalf("Duration(8,8) = %d, want 8", d)
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(11)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandSplitIndependence(t *testing.T) {
	r := NewRand(1)
	s1 := r.Split()
	v1 := s1.Uint64()
	// Extra draws on the child must not affect the parent's next Split.
	r2 := NewRand(1)
	s2 := r2.Split()
	for i := 0; i < 100; i++ {
		s2.Uint64()
	}
	if v1 != NewRand(1).Split().Uint64() {
		t.Fatal("Split is not deterministic")
	}
	_ = v1
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(13)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRandPanics(t *testing.T) {
	r := NewRand(1)
	for name, fn := range map[string]func(){
		"Intn0":      func() { r.Intn(0) },
		"Int63nNeg":  func() { r.Int63n(-1) },
		"DurationLH": func() { r.Duration(10, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	s := NewScheduler()
	var t Time
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t += 1
		s.At(t, PriDeliver, fn)
		if i%1024 == 1023 {
			s.Run()
		}
	}
	s.Run()
}

func TestTimersFirstFlipsOrdering(t *testing.T) {
	s := NewScheduler()
	s.SetTimersFirst(true)
	var order []string
	s.At(5, PriDeliver, func() { order = append(order, "deliver") })
	s.At(5, PriTimer, func() { order = append(order, "timer") })
	s.Run()
	if order[0] != "timer" {
		t.Fatalf("order = %v, want timer first", order)
	}
}
