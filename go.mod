module termproto

go 1.24
