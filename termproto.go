// Package termproto is a Go reproduction of Huang & Li, "A Termination
// Protocol for Simple Network Partitioning in Distributed Database
// Systems" (ICDE 1987): the termination protocol that makes three-phase
// commit resilient to multisite simple network partitioning under the
// optimistic (return-to-sender) failure model, together with every
// comparator protocol the paper discusses, a deterministic discrete-event
// simulator with a partitionable network, a formal FSA analyzer, a
// database substrate (B-tree, WAL, lock manager) with durable crash
// recovery — WAL replay, in-doubt resolution via the termination
// protocol's inquiry round, anti-entropy catch-up — a live goroutine
// runtime, and the full experiment suite that regenerates the paper's
// figures and analytical tables.
//
// This package is the public facade: it re-exports the supported API from
// the internal packages. The examples/ directory shows typical usage; the
// cmd/ binaries (termsim, protoviz, experiments) are thin wrappers over
// the same surface.
//
// # Quick start: the Cluster API
//
// A Cluster is a long-lived execution surface: open it once, submit any
// number of concurrent transactions (each with its own master), script
// faults — partitions, heals, repartitions, site crashes and recoveries —
// as timeline events, and run the whole scenario on either of two
// pluggable backends: the deterministic discrete-event simulator
// (NewSimBackend) or the goroutine-per-site real-time runtime
// (NewLiveBackend).
//
//	c, err := termproto.Open(termproto.ClusterConfig{
//	    Sites:    5,
//	    Protocol: termproto.TerminationTransient(),
//	    Schedule: termproto.Schedule{
//	        termproto.PartitionAt(2500, 4, 5), // 2.5T: sites 4,5 separated
//	        termproto.HealAt(9000),            // 9T: boundary disappears
//	    },
//	})
//	if err != nil { ... }
//	defer c.Close()
//	for i := 0; i < 10; i++ {
//	    c.Submit(termproto.Txn{}) // concurrent all-yes transactions
//	}
//	c.Wait()
//	fmt.Println(c.Termination()) // nil: every txn decided, atomically
//	fmt.Println(c.Stats())
//
// Times are virtual ticks: T = termproto.T = 1000 ticks is the longest
// end-to-end network delay, so the paper's timeout windows (2T, 3T, 5T,
// 6T) are exact multiples. The live backend maps 1000 ticks onto its
// configured wall-clock T.
//
// For one-off single-transaction experiments the deterministic Run
// harness remains available (see Options), and the E1–E15 experiment
// suite reproduces the paper's artifacts via Experiments.
package termproto

import (
	"termproto/internal/cluster"
	"termproto/internal/core"
	"termproto/internal/db/engine"
	"termproto/internal/db/wal"
	"termproto/internal/experiments"
	"termproto/internal/fsa"
	"termproto/internal/harness"
	"termproto/internal/livenet"
	"termproto/internal/obs"
	"termproto/internal/placement"
	"termproto/internal/proto"
	"termproto/internal/protocol/cooperative"
	"termproto/internal/protocol/fourpc"
	"termproto/internal/protocol/quorum"
	"termproto/internal/protocol/threepc"
	"termproto/internal/protocol/threepcrules"
	"termproto/internal/protocol/twopc"
	"termproto/internal/protocol/twopcext"
	"termproto/internal/recovery"
	"termproto/internal/scenario"
	"termproto/internal/sim"
	"termproto/internal/simnet"
	"termproto/internal/workload"
)

// Core identifiers and protocol substrate.
type (
	// SiteID identifies a participating site; experiments number sites
	// 1..n with the master at 1, as in the paper.
	SiteID = proto.SiteID
	// TxnID identifies a distributed transaction.
	TxnID = proto.TxnID
	// Outcome is a site's final commit/abort verdict.
	Outcome = proto.Outcome
	// Protocol builds master and slave automata for a commit protocol.
	Protocol = proto.Protocol
	// Node is one site's protocol automaton.
	Node = proto.Node
	// Env is the world a Node acts through.
	Env = proto.Env
	// Msg is a protocol message.
	Msg = proto.Msg
)

// Outcomes.
const (
	None   = proto.None
	Commit = proto.Commit
	Abort  = proto.Abort
)

// Virtual time.
type (
	// Time is a point in virtual time (ticks).
	Time = sim.Time
	// Duration is a span of virtual time (ticks).
	Duration = sim.Duration
)

// T is the longest end-to-end network delay in ticks; the protocol timeout
// windows are the paper's multiples of it (2T, 3T, 5T, 6T).
const T = sim.DefaultT

// Simulation and scenario types.
type (
	// Options configures a deterministic single-transaction run.
	Options = harness.Options
	// Result is a finished run: outcomes, blocking, trace, counters.
	Result = harness.Result
	// Voter scripts per-site votes.
	Voter = harness.Voter
	// Participant is the database-side hook (engine.Engine implements it).
	Participant = harness.Participant
	// Partition is a simple network partition (G2, onset, optional heal).
	Partition = simnet.Partition
	// Latency produces per-message delays.
	Latency = simnet.Latency
	// Fixed is constant latency; Uniform draws from a range; PerPair and
	// PerKind build adversarial schedules.
	Fixed   = simnet.Fixed
	Uniform = simnet.Uniform
	PerPair = simnet.PerPair
	PerKind = simnet.PerKind
	// Case is a Section 6 partition case label.
	Case = scenario.Case
)

// --- unified cluster API ---

type (
	// Cluster is the long-lived, backend-pluggable execution surface:
	// Open → Submit/SubmitBatch → Wait → Stats/Termination → Close.
	Cluster = cluster.Cluster
	// ClusterConfig parameterizes Open.
	ClusterConfig = cluster.Config
	// ClusterStats aggregates a cluster's transaction/network counters.
	ClusterStats = cluster.Stats
	// Txn is one transaction submitted to a Cluster.
	Txn = cluster.Txn
	// TxnResult is the per-site view of one submitted transaction.
	TxnResult = cluster.TxnResult
	// SiteOutcome is one site's final view of one transaction.
	SiteOutcome = cluster.SiteOutcome
	// Backend is a pluggable cluster runtime (sim or live).
	Backend = cluster.Backend
	// SimBackend is the deterministic discrete-event backend; SimOptions
	// tunes it.
	SimBackend = cluster.SimBackend
	SimOptions = cluster.SimOptions
	// LiveBackend is the goroutine/wall-clock backend; LiveOptions tunes
	// it.
	LiveBackend = cluster.LiveBackend
	LiveOptions = cluster.LiveOptions
	// Schedule is a timeline of fault events; ScheduleEvent is one entry.
	Schedule      = cluster.Schedule
	ScheduleEvent = cluster.Event
	// MasterPolicy assigns coordinators to transactions from their
	// participant sets.
	MasterPolicy = cluster.MasterPolicy
	// NetStats are cumulative network counters.
	NetStats = cluster.NetStats
	// ShardMap is the static data-placement constructor: a hash-sharded
	// keyspace with an arithmetic replica set per shard. Set
	// ClusterConfig.ShardMap and each transaction runs only at the
	// replica sets of the shards its payload keys touch — horizontal
	// scaling under the same protocols. Internally it seeds a Directory.
	ShardMap = cluster.ShardMap
	// Directory is the versioned shard directory — elastic membership.
	// Transactions resolve participants at their admission epoch, and
	// Cluster.Join/Leave/MoveShard rebalance shards at runtime: contents
	// are copied through the recovery catch-up machinery and each epoch
	// bump commits as a metadata transaction through the commit protocol,
	// so a partition mid-migration is resolved by the termination
	// protocol like any other in-doubt transaction.
	Directory = placement.Directory
	// Assignment is one immutable directory version: explicit replica
	// sets per shard over the current membership.
	Assignment = placement.Assignment
	// PlacementEpoch numbers directory versions.
	PlacementEpoch = placement.Epoch
	// MigrationReport records one Join/Leave/MoveShard execution.
	MigrationReport = cluster.MigrationReport
	// RecoveryReport is one site's durable recovery as run by the cluster
	// (ClusterConfig.Recovery): WAL replay, in-doubt resolution via the
	// termination protocol's inquiry round, and catch-up from a current
	// replica. Cluster.Recoveries lists them.
	RecoveryReport = cluster.RecoveryReport
	// RecoveryStats summarizes what one recovery did.
	RecoveryStats = recovery.Stats
)

// NewShardMap builds a placement map: shards hash-partition the keyspace,
// each replicated at replicationFactor consecutive sites of a
// sites-member cluster. ReplicationFactor 1 is allowed: single-replica
// transactions take the local-commit fast path (no protocol round).
func NewShardMap(shards, replicationFactor, sites int) (*ShardMap, error) {
	return cluster.NewShardMap(shards, replicationFactor, sites)
}

// NewDirectory opens a versioned shard directory at epoch 0.
func NewDirectory(initial *Assignment) *Directory { return placement.NewDirectory(initial) }

// ArithmeticAssignment builds the ShardMap-equivalent epoch-0 assignment
// over sites 1..n; ArithmeticAssignmentOver places over an explicit
// member subset (the rest join later).
var (
	ArithmeticAssignment     = placement.Arithmetic
	ArithmeticAssignmentOver = placement.ArithmeticOver
)

// Open starts a cluster (deterministic SimBackend unless configured).
func Open(cfg ClusterConfig) (*Cluster, error) { return cluster.Open(cfg) }

// Backend constructors.
var (
	NewSimBackend  = cluster.NewSimBackend
	NewLiveBackend = cluster.NewLiveBackend
)

// Schedule builders: partitions, heals, crashes, recoveries as timeline
// events (times in ticks; T = 1000 ticks).
var (
	PartitionAt          = cluster.PartitionAt
	TransientPartitionAt = cluster.TransientPartitionAt
	HealAt               = cluster.HealAt
	CrashAt              = cluster.CrashAt
	RecoverAt            = cluster.RecoverAt
	JoinAt               = cluster.JoinAt
	LeaveAt              = cluster.LeaveAt
	MoveShardAt          = cluster.MoveShardAt
)

// Master policies for ClusterConfig. MasterPrimary coordinates every
// transaction from inside its participant set (the shard-local policy,
// default for sharded clusters).
var (
	MasterFixed      = cluster.MasterFixed
	MasterRoundRobin = cluster.MasterRoundRobin
	MasterPrimary    = cluster.MasterPrimary
)

// Run executes one transaction deterministically and returns the result.
//
// Deprecated: Run remains for single-transaction timing experiments; new
// code should Open a Cluster, which multiplexes concurrent transactions
// and scripts faults on either backend.
func Run(opts Options) *Result { return harness.Run(opts) }

// G2 builds a partition group from site IDs.
func G2(ids ...SiteID) map[SiteID]bool { return simnet.G2Set(ids...) }

// AllYes votes yes at every site; NoAt votes no at the given sites.
var (
	AllYes = harness.AllYes
	NoAt   = harness.NoAt
)

// Classify assigns a completed run to its Section 6 case.
func Classify(r *Result, master SiteID) Case {
	return scenario.Classify(r.Trace, int(master))
}

// ClassifyTrace assigns a sim-backend cluster run to its Section 6 case.
// The backend must have been built with SimOptions.RecordTrace.
func ClassifyTrace(b *SimBackend, master SiteID) Case {
	return scenario.Classify(b.Trace(), int(master))
}

// --- protocols ---

// Termination returns the paper's termination protocol (§5.3) over
// modified three-phase commit — its primary contribution.
func Termination() Protocol { return core.Protocol{} }

// TerminationTransient returns the termination protocol with the §6 fix,
// valid under transient partitioning too.
func TerminationTransient() Protocol { return core.Protocol{TransientFix: true} }

// TerminationOptions exposes the configurable variant (extensions and the
// Figure 8 ablation switch).
type TerminationOptions = core.Protocol

// TwoPC returns pure two-phase commit (Fig. 1) — blocks under partitions.
func TwoPC() Protocol { return twopc.Protocol{} }

// TwoPCExtended returns Rule(a)/(b)-augmented 2PC (Fig. 2) — two-site
// resilient, multisite inconsistent.
func TwoPCExtended() Protocol { return twopcext.Protocol{} }

// ThreePC returns three-phase commit (Fig. 3); modified selects the
// Figure 8 slave automaton.
func ThreePC(modified bool) Protocol { return threepc.Protocol{Modified: modified} }

// ThreePCRules returns Rule(a)/(b)-augmented 3PC — the Section 3
// counterexample protocol.
func ThreePCRules() Protocol { return threepcrules.Protocol{} }

// Quorum returns the quorum-based baseline (Skeen '82 style): atomic but
// blocking for minority partitions.
func Quorum() Protocol { return quorum.Protocol{} }

// Cooperative returns Skeen's cooperative termination protocol for SITE
// failures over 3PC — nonblocking when the master crashes, but unsafe
// under partitions (the contrast motivating the paper).
func Cooperative() Protocol { return cooperative.Protocol{} }

// FourPCTermination returns the Theorem 10 generalization: the termination
// construction over a four-phase commit protocol.
func FourPCTermination() Protocol { return fourpc.Protocol{TransientFix: true} }

// --- observability ---

// MetricsSnapshot is a point-in-time view of a cluster's metric
// registry: Cluster.Metrics returns one on every backend (the net
// backend aggregates over the daemons' admin APIs), with an identical
// family-name set across sim, live, and net. Snapshots Merge, answer
// Total/Value lookups and histogram Quantile queries, and render
// Prometheus text via WritePrometheus.
type MetricsSnapshot = obs.Snapshot

// Metric family names — the cross-backend catalog. Latency histograms
// are in virtual ticks (T = 1000) except MWalFsyncLatency, which is
// wall-clock microseconds on every backend.
const (
	MRoundLatency       = obs.MRoundLatency
	MShardCommitLatency = obs.MShardCommitLatency
	MCommits            = obs.MCommits
	MAborts             = obs.MAborts
	MLockFailures       = obs.MLockFailures
	MWalFsyncLatency    = obs.MWalFsyncLatency
	MWalRecords         = obs.MWalRecords
	MWalSyncs           = obs.MWalSyncs
	MCarrierRounds      = obs.MCarrierRounds
	MBatchedTxns        = obs.MBatchedTxns
	MQuorumEvals        = obs.MQuorumEvals
	MLeaseEvents        = obs.MLeaseEvents
	MNetBytes           = obs.MNetBytes
	MNetFrames          = obs.MNetFrames
)

// --- formal analysis ---

type (
	// FSAProtocol is a formal protocol model for reachability analysis.
	FSAProtocol = fsa.Protocol
	// Analysis holds concurrency sets, committability and lemma verdicts.
	Analysis = fsa.Analysis
	// StateID names a local state within a role.
	StateID = fsa.StateID
)

// Analyze explores all reachable global states of a formal model with n
// sites and derives concurrency sets, committability and lemma verdicts.
func Analyze(p *FSAProtocol, n int) *Analysis { return fsa.Analyze(p, n) }

// Formal models of the paper's protocols.
var (
	FSATwoPC   = fsa.TwoPC
	FSAThreePC = fsa.ThreePC
	FSAFourPC  = fsa.FourPC
)

// --- database substrate ---

type (
	// Engine is a site-local database: B-tree storage, WAL, lock manager.
	Engine = engine.Engine
	// Op is one operation in a transaction body.
	Op = engine.Op
	// MemStore is an in-memory stable store; FileStore is file-backed.
	MemStore  = wal.MemStore
	FileStore = wal.FileStore
)

// Database operation kinds.
const (
	OpPut    = engine.OpPut
	OpDelete = engine.OpDelete
	OpAdd    = engine.OpAdd
)

// NewEngine builds a site database logging to the given stable store.
func NewEngine(name string, store wal.Store) *Engine { return engine.New(name, store) }

// OpenWAL opens (creating if needed) a file-backed stable store — the
// durable home of a site's write-ahead log across process restarts.
func OpenWAL(path string) (*FileStore, error) { return wal.OpenFile(path) }

// RecoverEngine rebuilds an engine from a stable log, returning in-doubt
// transaction IDs awaiting the termination protocol.
func RecoverEngine(name string, store wal.Store) (*Engine, []uint64, error) {
	return engine.Recover(name, store)
}

// EncodeOps serializes a transaction body for Options.Payload.
func EncodeOps(ops []Op) []byte { return engine.EncodeOps(ops) }

// EncodeInt / DecodeInt convert stored integer values.
var (
	EncodeInt = engine.EncodeInt
	DecodeInt = engine.DecodeInt
)

// --- live goroutine runtime ---

type (
	// LiveConfig parameterizes a real-time goroutine cluster.
	LiveConfig = livenet.Config
	// LiveCluster is a running set of live sites.
	LiveCluster = livenet.Cluster
	// LiveOutcome is one live site's result.
	LiveOutcome = livenet.Outcome
)

// NewLive builds a live cluster; LiveConsistent checks its outcomes.
var (
	NewLive        = livenet.New
	LiveConsistent = livenet.Consistent
)

// --- experiments ---

type (
	// ExperimentTable is one experiment's printable output.
	ExperimentTable = experiments.Table
	// ExperimentConfig tunes sweep sizes.
	ExperimentConfig = experiments.Config
)

// Experiments runs the full E1–E15 suite reproducing the paper.
func Experiments(cfg ExperimentConfig) []*ExperimentTable { return experiments.All(cfg) }

// --- workloads ---

type (
	// WorkloadConfig parameterizes a multi-transaction banking workload
	// over replicated engines.
	WorkloadConfig = workload.Config
	// WorkloadStats summarizes a workload run.
	WorkloadStats = workload.Stats
)

// RunWorkload executes transfer transactions through a commit protocol on
// one shared cluster timeline, optionally injecting partitions, and
// returns statistics plus the per-site engines. WorkloadConfig.Concurrency
// keeps several transfers in flight at once.
//
// Deprecated: RunWorkload remains as a convenience; it is a thin wrapper
// over the Cluster API, which new code should use directly.
func RunWorkload(cfg WorkloadConfig) (WorkloadStats, map[SiteID]*Engine) {
	return workload.Run(cfg)
}
