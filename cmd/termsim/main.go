// Command termsim runs a single commit-protocol scenario under the
// deterministic simulator and reports per-site outcomes, the Section 6
// case classification, and optionally the full execution trace.
//
// Usage:
//
//	termsim [-proto NAME] [-n sites] [-g2 3,4] [-at 2.5] [-heal 7]
//	        [-no 3] [-seed 1] [-latency fixed|uniform] [-trace]
//
// Times are in units of T (the longest end-to-end delay). Examples:
//
//	termsim -proto 2pc -n 3 -g2 3 -at 2.1          # 2PC blocks site 3
//	termsim -proto termination -n 5 -g2 4,5 -at 2.5 # paper's protocol
//	termsim -proto termination+transient -g2 3,4 -at 4.1 -heal 7 -trace
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"termproto/internal/core"
	"termproto/internal/harness"
	"termproto/internal/proto"
	"termproto/internal/protocol/cooperative"
	"termproto/internal/protocol/fourpc"
	"termproto/internal/protocol/quorum"
	"termproto/internal/protocol/threepc"
	"termproto/internal/protocol/threepcrules"
	"termproto/internal/protocol/twopc"
	"termproto/internal/protocol/twopcext"
	"termproto/internal/scenario"
	"termproto/internal/sim"
	"termproto/internal/simnet"
)

var protocols = map[string]proto.Protocol{
	"2pc":                   twopc.Protocol{},
	"2pc-ext":               twopcext.Protocol{},
	"3pc":                   threepc.Protocol{},
	"3pc-mod":               threepc.Protocol{Modified: true},
	"3pc-rules":             threepcrules.Protocol{},
	"quorum":                quorum.Protocol{},
	"3pc-cooperative":       cooperative.Protocol{},
	"termination":           core.Protocol{},
	"termination+transient": core.Protocol{TransientFix: true},
	"4pc-termination":       fourpc.Protocol{TransientFix: true},
}

func main() {
	protoName := flag.String("proto", "termination", "protocol name (see -list)")
	list := flag.Bool("list", false, "list protocols and exit")
	n := flag.Int("n", 4, "number of sites (master is site 1)")
	g2Spec := flag.String("g2", "", "comma-separated sites separated by the partition")
	at := flag.Float64("at", -1, "partition onset in units of T (<0 = no partition)")
	heal := flag.Float64("heal", 0, "heal time in units of T (0 = permanent)")
	noVotes := flag.String("no", "", "comma-separated sites that vote no")
	seed := flag.Uint64("seed", 1, "random seed")
	latency := flag.String("latency", "fixed", "latency model: fixed (=T) or uniform [T/3,T]")
	showTrace := flag.Bool("trace", false, "dump the full execution trace")
	flag.Parse()

	if *list {
		names := make([]string, 0, len(protocols))
		for name := range protocols {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Println(name)
		}
		return
	}

	p, ok := protocols[*protoName]
	if !ok {
		fmt.Fprintf(os.Stderr, "termsim: unknown protocol %q (use -list)\n", *protoName)
		os.Exit(2)
	}

	opts := harness.Options{N: *n, Protocol: p, Seed: *seed}
	if ids := parseSites(*noVotes); len(ids) > 0 {
		opts.Votes = harness.NoAt(ids...)
	}
	if *latency == "uniform" {
		opts.Latency = simnet.Uniform{Lo: sim.DefaultT / 3, Hi: sim.DefaultT}
	}
	if *at >= 0 {
		if *g2Spec == "" {
			fmt.Fprintln(os.Stderr, "termsim: -at requires -g2")
			os.Exit(2)
		}
		part := &simnet.Partition{
			At: sim.Time(*at * float64(sim.DefaultT)),
			G2: simnet.G2Set(parseSites(*g2Spec)...),
		}
		if *heal > 0 {
			part.Heal = sim.Time(*heal * float64(sim.DefaultT))
		}
		opts.Partition = part
	}

	r := harness.Run(opts)

	fmt.Printf("protocol %s, %d sites, T=%d ticks\n", p.Name(), *n, sim.DefaultT)
	if opts.Partition != nil {
		healStr := "permanent"
		if opts.Partition.Heal > opts.Partition.At {
			healStr = fmt.Sprintf("heals at %.2fT", float64(opts.Partition.Heal)/float64(sim.DefaultT))
		}
		fmt.Printf("partition at %.2fT separating G2=%s (%s)\n",
			float64(opts.Partition.At)/float64(sim.DefaultT), *g2Spec, healStr)
	}
	fmt.Println()
	for i := 1; i <= *n; i++ {
		id := proto.SiteID(i)
		s := r.Sites[id]
		when := "—"
		if s.Outcome != proto.None {
			when = fmt.Sprintf("%.2fT", float64(s.DecidedAt)/float64(sim.DefaultT))
		}
		role := "slave "
		if i == 1 {
			role = "master"
		}
		fmt.Printf("site %d (%s): %-6s at %-7s final state %s\n", i, role, s.Outcome, when, s.FinalState)
	}
	fmt.Println()
	fmt.Printf("atomic (consistent): %v\n", r.Consistent())
	fmt.Printf("blocked sites:       %v\n", r.Blocked())
	fmt.Printf("§6 case:             %s\n", scenario.Classify(r.Trace, 1))
	fmt.Printf("messages:            %d sent, %d delivered, %d bounced, %d dropped\n",
		r.MsgsSent, r.MsgsDelivered, r.MsgsBounced, r.MsgsDropped)
	if *showTrace {
		fmt.Println("\ntrace:")
		fmt.Print(r.Trace.Dump())
	}
	if !r.Consistent() {
		os.Exit(1)
	}
}

func parseSites(spec string) []proto.SiteID {
	var out []proto.SiteID
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			fmt.Fprintf(os.Stderr, "termsim: bad site %q\n", part)
			os.Exit(2)
		}
		out = append(out, proto.SiteID(v))
	}
	return out
}
