// Command termsim runs commit-protocol scenarios through the unified
// cluster API: one or many concurrent transactions, a scripted fault
// timeline, and a choice of execution backend — the deterministic
// discrete-event simulator, the goroutine-per-site live runtime, or a
// localnet of real termnode processes speaking the protocol over TCP
// (-backend net), where a scheduled crash is a SIGKILL and a recovery is
// a fresh process over the surviving write-ahead log.
//
// Usage:
//
//	termsim [-proto NAME] [-n sites] [-txns k] [-backend sim|live|net]
//	        [-masters fixed|rr|primary] [-spacing 0.4]
//	        [-shards s] [-rf r] [-accounts a] [-zipf s] [-ops k] [-db]
//	        [-lease-ttl 15] [-quorum all|majority|one]
//	        [-schedule "partition@2.5:3,4;heal@7;crash@8:2;recover@9:2;join@10:6;leave@14:2;move@18:3,1,5"]
//	        [-g2 3,4] [-at 2.5] [-heal 7]     (shorthand for -schedule)
//	        [-join "10:6"] [-leave "14:2"] [-moves "18:3,1,5"]
//	        [-no 3] [-seed 1] [-latency fixed|uniform] [-trace]
//	        [-metrics] [-trace-out run.jsonl]
//
// Times are in units of T (the longest end-to-end delay). With -shards the
// keyspace is hash-placed across the sites (-rf replicas per shard) by a
// versioned shard directory, transactions carry transfer payloads over
// -accounts rows, and each runs only at its participant sites — the
// replica sets of the shards it touches at its admission epoch. -zipf
// skews the generated payloads toward hot keys and -ops chains each
// transaction through that many accounts. With -db every site runs a
// WAL-backed database engine and a scheduled recover event is a durable
// restart: log replay, in-doubt resolution via the termination protocol's
// inquiry round, and catch-up from a current replica.
//
// Elastic membership: -join "t:site" schedules a site joining the
// directory at time t (a site named only in joins starts outside the
// membership and owns no shards until then), -leave "t:site" drains a
// member's shards and removes it, and -moves "t:shard,from,to" hands one
// shard replica over. Each change migrates data through the recovery
// catch-up machinery and commits its epoch bump as a metadata transaction
// through the selected commit protocol. Examples:
//
//	termsim -proto 2pc -n 3 -g2 3 -at 2.1           # 2PC blocks site 3
//	termsim -proto termination -n 5 -g2 4,5 -at 2.5 # paper's protocol
//	termsim -proto termination+transient -n 5 -txns 12 \
//	        -schedule "partition@2.5:4,5;heal@9" -masters rr
//	termsim -backend live -n 5 -txns 8 -schedule "partition@2.5:4,5;heal@12"
//	termsim -backend net -n 3 -txns 4 \
//	        -schedule "crash@0.8:1;recover@8:1"       # real processes, real SIGKILL
//	termsim -n 12 -shards 12 -rf 3 -txns 24         # sharded placement
//	termsim -n 5 -txns 8 -db -zipf 0.9 -ops 3 \
//	        -schedule "crash@2.5:5;recover@12:5"    # durable crash recovery
//	termsim -n 6 -shards 8 -rf 2 -db -txns 16 \
//	        -join "6:6" -leave "16:1"               # elastic membership
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"termproto/internal/cluster"
	"termproto/internal/db/engine"
	"termproto/internal/db/wal"
	"termproto/internal/obs"
	"termproto/internal/placement"
	"termproto/internal/proto"
	"termproto/internal/protocol/registry"
	"termproto/internal/quorum"
	"termproto/internal/scenario"
	"termproto/internal/sim"
	"termproto/internal/simnet"
	"termproto/internal/trace"
	"termproto/internal/workload"
)

func main() {
	protoName := flag.String("proto", "termination", "protocol name (see -list)")
	list := flag.Bool("list", false, "list protocols and exit")
	n := flag.Int("n", 4, "number of sites")
	txns := flag.Int("txns", 1, "number of concurrent transactions")
	backend := flag.String("backend", "sim", "execution backend: sim, live, or net (real termnode processes over TCP)")
	workdir := flag.String("workdir", "", "net backend: localnet root for per-node WALs and logs (default a temp dir; left behind for postmortems)")
	masters := flag.String("masters", "", "master policy: fixed (site 1), rr (round-robin), primary (shard-local); default fixed, or primary with -shards")
	shards := flag.Int("shards", 0, "hash-shard the keyspace across this many shards (0 = full replication)")
	rf := flag.Int("rf", 0, "replicas per shard (default min(3, n); requires -shards)")
	accounts := flag.Int("accounts", 0, "account rows for generated transfer payloads (default 2*shards, or 8)")
	zipfS := flag.Float64("zipf", 0, "zipfian hot-key skew exponent for generated payloads (0 = uniform)")
	opsN := flag.Int("ops", 2, "accounts touched per generated transaction (a chain of transfers)")
	db := flag.Bool("db", false, "attach a WAL-backed database engine at every site; scheduled recover events become durable restarts (replay + in-doubt resolution + catch-up)")
	batchMode := flag.Bool("batch", false, "coalesce same-instant transactions sharing a replica set into shared protocol rounds (one carrier message per round)")
	groupCommit := flag.Bool("group-commit", true, "WAL group commit on the engines (-db) or daemons (-backend net): amortize one fsync over concurrent appends")
	spacing := flag.Float64("spacing", 0.4, "submission spacing between transactions in units of T")
	scheduleSpec := flag.String("schedule", "",
		"fault timeline: ev@t[:args][;...] with ev in partition|heal|crash|recover, t in units of T")
	g2Spec := flag.String("g2", "", "shorthand: comma-separated sites separated by the partition")
	at := flag.Float64("at", -1, "shorthand: partition onset in units of T (<0 = no partition)")
	heal := flag.Float64("heal", 0, "shorthand: heal time in units of T (0 = permanent)")
	joinSpec := flag.String("join", "", "membership joins: t:site[;t:site...] in units of T (requires -shards; sites named only here start outside the membership)")
	leaveSpec := flag.String("leave", "", "membership leaves: t:site[;t:site...] in units of T (requires -shards)")
	movesSpec := flag.String("moves", "", "shard moves: t:shard,from,to[;...] in units of T (requires -shards)")
	leaseTTL := flag.Float64("lease-ttl", 0, "epoch-scoped shard lease TTL in units of T (requires -shards; 0 disables leasing)")
	quorumSpec := flag.String("quorum", "", "per-replica-group availability rule: all (default), majority, or one (requires -shards)")
	noVotes := flag.String("no", "", "comma-separated sites that vote no")
	seed := flag.Uint64("seed", 1, "random seed")
	latency := flag.String("latency", "fixed", "latency model: fixed (=T) or uniform [T/3,T]")
	showTrace := flag.Bool("trace", false, "dump the full execution trace (sim backend)")
	showMetrics := flag.Bool("metrics", false, "print a one-screen metrics summary (latency quantiles, engine/WAL/wire counters)")
	traceOut := flag.String("trace-out", "", "write the run's protocol trace as JSONL to this file (sim backend; on -backend net pass the daemons' own -trace-out via termnode)")
	flag.Parse()

	if *list {
		for _, name := range registry.Names() {
			fmt.Println(name)
		}
		return
	}

	p, err := registry.Lookup(*protoName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "termsim: unknown protocol %q (use -list)\n", *protoName)
		os.Exit(2)
	}

	sched, err := parseSchedule(*scheduleSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "termsim: %v\n", err)
		os.Exit(2)
	}
	if *at >= 0 {
		if *g2Spec == "" {
			fmt.Fprintln(os.Stderr, "termsim: -at requires -g2")
			os.Exit(2)
		}
		ev := cluster.PartitionAt(ticks(*at), parseSites(*g2Spec)...)
		if *heal > 0 {
			ev.Heal = ticks(*heal)
		}
		sched = append(sched, ev)
	}

	// Membership churn: shorthand flags append join/leave/move events to
	// the schedule; sites whose first membership event is a join start
	// outside the directory (provisioned, empty).
	for _, spec := range []struct {
		raw  string
		kind cluster.EventKind
	}{{*joinSpec, cluster.EvJoin}, {*leaveSpec, cluster.EvLeave}} {
		evs, err := parseSiteEvents(spec.raw, spec.kind)
		if err != nil {
			fmt.Fprintf(os.Stderr, "termsim: %v\n", err)
			os.Exit(2)
		}
		sched = append(sched, evs...)
	}
	moveEvs, err := parseMoveEvents(*movesSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "termsim: %v\n", err)
		os.Exit(2)
	}
	sched = append(sched, moveEvs...)
	hasMembership := false
	for _, ev := range sched {
		if ev.Kind == cluster.EvJoin || ev.Kind == cluster.EvLeave || ev.Kind == cluster.EvMove {
			hasMembership = true
		}
	}

	cfg := cluster.Config{Sites: *n, Protocol: p, Schedule: sched, Batching: *batchMode}
	var members []proto.SiteID
	if *shards > 0 {
		rfVal := *rf
		if rfVal == 0 {
			rfVal = 3
			if rfVal > *n {
				rfVal = *n
			}
		}
		if _, err := cluster.NewShardMap(*shards, rfVal, *n); err != nil {
			fmt.Fprintf(os.Stderr, "termsim: %v\n", err)
			os.Exit(2)
		}
		*rf = rfVal
		members = initialMembers(*n, sched)
	} else if *rf != 0 {
		fmt.Fprintln(os.Stderr, "termsim: -rf requires -shards")
		os.Exit(2)
	} else if hasMembership {
		fmt.Fprintln(os.Stderr, "termsim: -join/-leave/-moves require -shards")
		os.Exit(2)
	}
	switch *masters {
	case "", "fixed": // cluster default: fixed, or primary with a ShardMap
	case "rr":
		cfg.MasterPolicy = cluster.MasterRoundRobin()
	case "primary":
		cfg.MasterPolicy = cluster.MasterPrimary()
	default:
		fmt.Fprintf(os.Stderr, "termsim: unknown master policy %q\n", *masters)
		os.Exit(2)
	}
	if *leaseTTL < 0 || (*leaseTTL > 0 && *shards == 0) {
		fmt.Fprintln(os.Stderr, "termsim: -lease-ttl needs a positive value and -shards")
		os.Exit(2)
	}
	cfg.LeaseTTL = sim.Duration(*leaseTTL * float64(sim.DefaultT))
	if *quorumSpec != "" && *shards == 0 {
		fmt.Fprintln(os.Stderr, "termsim: -quorum requires -shards")
		os.Exit(2)
	}
	rule, err := quorum.ParseRule(*quorumSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "termsim: %v\n", err)
		os.Exit(2)
	}
	cfg.Quorum = rule
	if ids := parseSites(*noVotes); len(ids) > 0 {
		cfg.Votes = proto.NoAt(ids...)
	}
	if *opsN < 2 {
		fmt.Fprintln(os.Stderr, "termsim: -ops must be at least 2")
		os.Exit(2)
	}
	if (*zipfS != 0 || *opsN != 2) && *shards == 0 && !*db {
		fmt.Fprintln(os.Stderr, "termsim: -zipf/-ops shape generated payloads; they require -shards or -db")
		os.Exit(2)
	}
	numAccounts := *accounts
	if numAccounts == 0 {
		if *shards > 0 {
			numAccounts = 2 * *shards
		} else {
			numAccounts = 8
		}
	}
	if *db {
		// The workload's fixture builder places and seeds the engines,
		// wired to the same directory the cluster resolves through — so a
		// join's incoming shards land on the new engine mid-migration.
		wcfg := workload.Config{
			Sites: *n, Accounts: numAccounts, InitialBalance: 1000,
			Shards: *shards, ReplicationFactor: *rf,
		}
		if *groupCommit {
			wcfg.Engine.WAL = wal.GroupCommitDefaults()
		}
		dir, engs := wcfg.SetupOver(members)
		cfg.Directory = dir
		cfg.Participants = make(map[proto.SiteID]cluster.Participant, *n)
		for id, e := range engs {
			cfg.Participants[id] = e
		}
		cfg.Recovery = true
	} else if *shards > 0 {
		asg, err := placement.ArithmeticOver(*shards, *rf, members)
		if err != nil {
			fmt.Fprintf(os.Stderr, "termsim: %v\n", err)
			os.Exit(2)
		}
		cfg.Directory = placement.NewDirectory(asg)
	}

	var simBackend *cluster.SimBackend
	var netBackend *cluster.NetBackend
	switch *backend {
	case "sim":
		opts := cluster.SimOptions{Seed: *seed, RecordTrace: *showTrace || *traceOut != "" || *txns == 1}
		if *latency == "uniform" {
			opts.Latency = simnet.Uniform{Lo: sim.DefaultT / 3, Hi: sim.DefaultT}
		}
		simBackend = cluster.NewSimBackend(opts)
		cfg.Backend = simBackend
	case "live":
		cfg.Backend = cluster.NewLiveBackend(cluster.LiveOptions{Seed: int64(*seed)})
	case "net":
		// Every site becomes a real termnode process; the protocol crosses
		// the localnet by name, so the flag's value is the wire contract.
		netBackend = cluster.NewNetBackend(cluster.NetOptions{
			ProtoName: *protoName,
			Workdir:   *workdir,
			Seed:      int64(*seed),
			ExtraArgs: []string{fmt.Sprintf("-group-commit=%v", *groupCommit)},
		})
		cfg.Backend = netBackend
	default:
		fmt.Fprintf(os.Stderr, "termsim: unknown backend %q\n", *backend)
		os.Exit(2)
	}

	c, err := cluster.Open(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "termsim: %v\n", err)
		os.Exit(2)
	}
	// On the process backend the daemons' engines start empty, so a
	// sharded run without -db seeds the generated accounts through the
	// cluster itself — one OpPut transaction committed before traffic
	// starts, the same way an operator loads fixtures over the API.
	// Without it every generated transfer would debit a missing account
	// and vote no.
	seeded := false
	if netBackend != nil && cfg.Directory != nil && !*db {
		ops := make([]engine.Op, numAccounts)
		for a := range ops {
			ops[a] = engine.Op{Kind: engine.OpPut, Key: fmt.Sprintf("acct/%d", a), Value: engine.EncodeInt(1000)}
		}
		if _, err := c.Submit(cluster.Txn{Payload: engine.EncodeOps(ops)}); err != nil {
			fmt.Fprintf(os.Stderr, "termsim: seeding accounts: %v\n", err)
			os.Exit(2)
		}
		if err := c.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "termsim: seeding accounts: %v\n", err)
			os.Exit(2)
		}
		seeded = true
	}
	batch := make([]cluster.Txn, *txns)
	base := sim.Time(0)
	if seeded {
		base = c.Now() + sim.Time(sim.DefaultT)
	}
	for i := range batch {
		batch[i].At = base + sim.Time(float64(i)**spacing*float64(sim.DefaultT))
	}
	if cfg.Directory != nil || *db {
		// Sharded and database-backed runs carry transfer payloads so the
		// placement layer has keys to route and the engines have writes to
		// log: chains of -ops accounts, hot-key-skewed by -zipf.
		rng := sim.NewRand(*seed + 0x5ad)
		z := workload.NewZipf(numAccounts, *zipfS)
		for i := range batch {
			chain := z.DrawDistinct(rng, *opsN)
			batch[i].Payload = engine.EncodeOps(workload.ChainOps(chain, 1))
		}
	}
	rs, err := c.SubmitBatch(batch)
	if err != nil {
		fmt.Fprintf(os.Stderr, "termsim: %v\n", err)
		os.Exit(2)
	}
	if err := c.Wait(); err != nil {
		fmt.Fprintf(os.Stderr, "termsim: %v\n", err)
		os.Exit(2)
	}
	// The metrics snapshot must precede Close: on the net backend it
	// merges the daemons' registries over their admin APIs, and Close
	// tears the processes down.
	var msnap obs.Snapshot
	if *showMetrics {
		msnap = c.Metrics()
	}
	c.Close() // live backend: fills final automaton states

	fmt.Printf("protocol %s, %d sites, %d txns, %s backend, T=%d ticks\n",
		p.Name(), *n, *txns, cfg.Backend.Name(), sim.DefaultT)
	if netBackend != nil {
		fmt.Printf("  localnet workspace: %s\n", netBackend.Workdir())
	}
	if d := cfg.Directory; d != nil {
		_, asg := d.Current()
		fmt.Printf("  sharded placement (epoch %d): %s\n", d.Epoch(), asg)
	}
	if seeded {
		fmt.Printf("  seeded %d accounts through the cluster (initial balance 1000)\n", numAccounts)
	}
	for _, ev := range sched.Sorted() {
		fmt.Printf("  %s\n", describeEvent(ev))
	}
	fmt.Println()

	for _, r := range rs {
		if *txns > 1 {
			if cfg.Directory != nil {
				fmt.Printf("txn %d (master %d, sites %v): %-6s  consistent=%v blocked=%v\n",
					r.TID, r.Master, r.Participants, r.Outcome(), r.Consistent(), r.Blocked())
			} else {
				fmt.Printf("txn %d (master %d): %-6s  consistent=%v blocked=%v\n",
					r.TID, r.Master, r.Outcome(), r.Consistent(), r.Blocked())
			}
			continue
		}
		for i := 1; i <= *n; i++ {
			id := proto.SiteID(i)
			s := r.Sites[id]
			if s == nil {
				fmt.Printf("site %d: not a participant\n", i)
				continue
			}
			when := "—"
			if s.Outcome != proto.None {
				when = fmt.Sprintf("%.2fT", float64(s.DecidedAt)/float64(sim.DefaultT))
			}
			role := "slave "
			if id == r.Master {
				role = "master"
			}
			fmt.Printf("site %d (%s): %-6s at %-7s final state %s\n",
				i, role, s.Outcome, when, s.FinalState)
		}
		fmt.Println()
		fmt.Printf("atomic (consistent): %v\n", r.Consistent())
		fmt.Printf("blocked sites:       %v\n", r.Blocked())
		if simBackend != nil {
			fmt.Printf("§6 case:             %s\n",
				scenario.Classify(simBackend.Trace(), int(r.Master)))
		}
	}

	if reps := c.Recoveries(); len(reps) > 0 {
		fmt.Println("recoveries:")
		for _, r := range reps {
			fmt.Printf("  %s\n", r)
		}
		fmt.Println()
	}

	if ms := c.Migrations(); len(ms) > 0 {
		fmt.Println("migrations:")
		for _, m := range ms {
			fmt.Printf("  %s\n", m)
		}
		if d := cfg.Directory; d != nil {
			_, asg := d.Current()
			fmt.Printf("  final: epoch %d, %s\n", d.Epoch(), asg)
		}
		fmt.Println()
	}

	st := c.Stats()
	fmt.Println()
	fmt.Printf("stats:       %s\n", st)
	if cfg.Directory != nil {
		avail := c.AvailableShards(func(proto.SiteID) bool { return true })
		fmt.Printf("quorum:      rule %s, %d/%d shards available with every site reachable\n",
			cfg.Quorum, len(avail), *shards)
		if cfg.LeaseTTL > 0 {
			now := c.Now()
			held := 0
			for i := 1; i <= *n; i++ {
				lt := c.LeaseTable(proto.SiteID(i))
				for s := 0; s < *shards; s++ {
					if lt != nil && lt.Hold(s, cfg.Directory.Epoch(), now) {
						held++
					}
				}
			}
			fmt.Printf("leases:      ttl %.1fT, %d shard leases live at %.2fT\n",
				*leaseTTL, held, float64(now)/float64(sim.DefaultT))
		}
	}
	fmt.Printf("termination: %v\n", termination(c))
	if *showMetrics {
		printMetrics(msnap)
	}
	if *showTrace && simBackend != nil {
		fmt.Println("\ntrace:")
		fmt.Print(simBackend.Trace().Dump())
	}
	if *traceOut != "" {
		if simBackend == nil {
			fmt.Fprintln(os.Stderr, "termsim: -trace-out needs the sim backend (daemons export their own with termnode -trace-out)")
			os.Exit(2)
		}
		events := simBackend.Trace().Events()
		if err := trace.WriteJSONLFile(*traceOut, events); err != nil {
			fmt.Fprintf(os.Stderr, "termsim: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace:       %d events -> %s\n", len(events), *traceOut)
	}
	if st.Inconsistent > 0 {
		os.Exit(1)
	}
}

// printMetrics renders the one-screen observability summary: latency
// quantiles in units of T (fsync in µs — it is wall time on every
// backend) and the counter seams, skipping families this run produced
// no traffic for.
func printMetrics(snap obs.Snapshot) {
	inT := func(q float64) float64 {
		return snap.Quantile(obs.MRoundLatency, q, obs.L("phase", "decided")) / float64(sim.DefaultT)
	}
	fmt.Println("\nmetrics:")
	if n := snap.Value(obs.MRoundLatency, obs.L("phase", "decided")); n > 0 {
		fmt.Printf("  round latency (decided):  n=%-4d p50=%.2fT p99=%.2fT\n", n, inT(0.5), inT(0.99))
	}
	if n := snap.Total(obs.MShardCommitLatency); n > 0 {
		fmt.Printf("  commit latency:           n=%-4d p50=%.2fT p99=%.2fT\n", n,
			snap.Quantile(obs.MShardCommitLatency, 0.5)/float64(sim.DefaultT),
			snap.Quantile(obs.MShardCommitLatency, 0.99)/float64(sim.DefaultT))
	}
	if c, a := snap.Total(obs.MCommits), snap.Total(obs.MAborts); c+a > 0 {
		fmt.Printf("  engine decisions:         commits=%d aborts=%d lock-failures=%d\n",
			c, a, snap.Total(obs.MLockFailures))
	}
	if recs := snap.Total(obs.MWalRecords); recs > 0 {
		fmt.Printf("  wal:                      records=%d syncs=%d fsync p50=%.0fµs p99=%.0fµs\n",
			recs, snap.Total(obs.MWalSyncs),
			snap.Quantile(obs.MWalFsyncLatency, 0.5), snap.Quantile(obs.MWalFsyncLatency, 0.99))
		if b := snap.Total(obs.MWalBatches); b > 0 {
			fmt.Printf("  group commit:             batches=%d occupancy=%.2f\n",
				b, float64(snap.Total(obs.MWalBatchedRecords))/float64(b))
		}
	}
	if cr := snap.Total(obs.MCarrierRounds); cr > 0 {
		fmt.Printf("  batching:                 carriers=%d batched-txns=%d\n",
			cr, snap.Total(obs.MBatchedTxns))
	}
	if snap.Total(obs.MQuorumEvals) > 0 {
		fmt.Printf("  quorum evals:             met=%d unmet=%d\n",
			snap.Value(obs.MQuorumEvals, obs.L("result", "met")),
			snap.Value(obs.MQuorumEvals, obs.L("result", "unmet")))
	}
	if snap.Total(obs.MLeaseEvents) > 0 {
		fmt.Printf("  leases:                   grant=%d renew=%d expire=%d\n",
			snap.Value(obs.MLeaseEvents, obs.L("event", "grant")),
			snap.Value(obs.MLeaseEvents, obs.L("event", "renew")),
			snap.Value(obs.MLeaseEvents, obs.L("event", "expire")))
	}
	if snap.Total(obs.MNetFrames) > 0 {
		fmt.Printf("  wire:                     sent %d frames / %d bytes, recv %d frames / %d bytes\n",
			snap.Value(obs.MNetFrames, obs.L("dir", "sent")), snap.Value(obs.MNetBytes, obs.L("dir", "sent")),
			snap.Value(obs.MNetFrames, obs.L("dir", "recv")), snap.Value(obs.MNetBytes, obs.L("dir", "recv")))
	}
}

func termination(c *cluster.Cluster) string {
	if err := c.Termination(); err != nil {
		return err.Error()
	}
	return "ok (every transaction decided, atomically)"
}

func ticks(unitsOfT float64) sim.Time {
	return sim.Time(unitsOfT * float64(sim.DefaultT))
}

func describeEvent(ev cluster.Event) string {
	t := float64(ev.At) / float64(sim.DefaultT)
	switch ev.Kind {
	case cluster.EvPartition:
		s := fmt.Sprintf("partition at %.2fT separating %v", t, ev.G2)
		if ev.Heal > ev.At {
			s += fmt.Sprintf(", heals at %.2fT", float64(ev.Heal)/float64(sim.DefaultT))
		}
		return s
	case cluster.EvHeal:
		return fmt.Sprintf("heal at %.2fT", t)
	case cluster.EvCrash:
		return fmt.Sprintf("site %d crashes at %.2fT", ev.Site, t)
	case cluster.EvRecover:
		return fmt.Sprintf("site %d recovers at %.2fT", ev.Site, t)
	case cluster.EvJoin:
		return fmt.Sprintf("site %d joins at %.2fT", ev.Site, t)
	case cluster.EvLeave:
		return fmt.Sprintf("site %d leaves at %.2fT", ev.Site, t)
	case cluster.EvMove:
		return fmt.Sprintf("shard %d moves %d->%d at %.2fT", ev.Shard, ev.From, ev.Site, t)
	default:
		return fmt.Sprintf("event %v at %.2fT", ev.Kind, t)
	}
}

// parseSiteEvents parses "t:site[;t:site...]" into join/leave events.
func parseSiteEvents(spec string, kind cluster.EventKind) (cluster.Schedule, error) {
	var out cluster.Schedule
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		tStr, siteStr, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("bad %s entry %q (want t:site)", kind, entry)
		}
		t, err := strconv.ParseFloat(strings.TrimSpace(tStr), 64)
		if err != nil {
			return nil, fmt.Errorf("bad time in %q: %v", entry, err)
		}
		site, err := strconv.Atoi(strings.TrimSpace(siteStr))
		if err != nil {
			return nil, fmt.Errorf("bad site in %q: %v", entry, err)
		}
		out = append(out, cluster.Event{At: ticks(t), Kind: kind, Site: proto.SiteID(site)})
	}
	return out, nil
}

// parseMoveEvents parses "t:shard,from,to[;...]".
func parseMoveEvents(spec string) (cluster.Schedule, error) {
	var out cluster.Schedule
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		tStr, rest, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("bad move entry %q (want t:shard,from,to)", entry)
		}
		t, err := strconv.ParseFloat(strings.TrimSpace(tStr), 64)
		if err != nil {
			return nil, fmt.Errorf("bad time in %q: %v", entry, err)
		}
		parts := strings.Split(rest, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad move entry %q (want t:shard,from,to)", entry)
		}
		var nums [3]int
		for i, p := range parts {
			if nums[i], err = strconv.Atoi(strings.TrimSpace(p)); err != nil {
				return nil, fmt.Errorf("bad number in %q: %v", entry, err)
			}
		}
		out = append(out, cluster.MoveShardAt(ticks(t), nums[0], proto.SiteID(nums[1]), proto.SiteID(nums[2])))
	}
	return out, nil
}

// initialMembers derives the directory's starting membership: every site
// except those whose first membership event on the timeline is a join —
// they begin as provisioned, empty capacity.
func initialMembers(sites int, sched cluster.Schedule) []proto.SiteID {
	first := make(map[proto.SiteID]cluster.EventKind)
	for _, ev := range sched.Sorted() {
		if ev.Kind != cluster.EvJoin && ev.Kind != cluster.EvLeave {
			continue
		}
		if _, seen := first[ev.Site]; !seen {
			first[ev.Site] = ev.Kind
		}
	}
	var out []proto.SiteID
	for i := 1; i <= sites; i++ {
		if id := proto.SiteID(i); first[id] != cluster.EvJoin {
			out = append(out, id)
		}
	}
	return out
}

// parseSchedule parses "partition@2.5:3,4;heal@7;crash@8:2;recover@9:2".
func parseSchedule(spec string) (cluster.Schedule, error) {
	var out cluster.Schedule
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kind, rest, ok := strings.Cut(entry, "@")
		if !ok {
			return nil, fmt.Errorf("bad schedule entry %q (want ev@t[:args])", entry)
		}
		tStr, args, _ := strings.Cut(rest, ":")
		t, err := strconv.ParseFloat(tStr, 64)
		if err != nil {
			return nil, fmt.Errorf("bad time in %q: %v", entry, err)
		}
		switch kind {
		case "partition":
			ids := parseSites(args)
			if len(ids) == 0 {
				return nil, fmt.Errorf("partition needs sites: %q", entry)
			}
			out = append(out, cluster.PartitionAt(ticks(t), ids...))
		case "heal":
			out = append(out, cluster.HealAt(ticks(t)))
		case "crash", "recover", "join", "leave":
			site, err := strconv.Atoi(strings.TrimSpace(args))
			if err != nil {
				return nil, fmt.Errorf("%s needs a site: %q", kind, entry)
			}
			switch kind {
			case "crash":
				out = append(out, cluster.CrashAt(ticks(t), proto.SiteID(site)))
			case "recover":
				out = append(out, cluster.RecoverAt(ticks(t), proto.SiteID(site)))
			case "join":
				out = append(out, cluster.JoinAt(ticks(t), proto.SiteID(site)))
			case "leave":
				out = append(out, cluster.LeaveAt(ticks(t), proto.SiteID(site)))
			}
		case "move":
			evs, err := parseMoveEvents(fmt.Sprintf("%g:%s", t, args))
			if err != nil {
				return nil, err
			}
			out = append(out, evs...)
		default:
			return nil, fmt.Errorf("unknown event %q in %q", kind, entry)
		}
	}
	return out, nil
}

func parseSites(spec string) []proto.SiteID {
	var out []proto.SiteID
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			fmt.Fprintf(os.Stderr, "termsim: bad site %q\n", part)
			os.Exit(2)
		}
		out = append(out, proto.SiteID(v))
	}
	return out
}
