// Command termchaos generates, runs, and machine-checks randomized fault
// schedules against the termination protocol suite. Every scenario derives
// deterministically from a uint64 seed, so any failure this driver prints
// reproduces exactly with `termchaos -replay <seed>`.
//
// Modes:
//
//	termchaos -n 2000                  # run a 2000-seed corpus on the simulator
//	termchaos -n 3 -backend net        # sample net-compatible seeds on real processes
//	termchaos -replay 1337             # re-run one seed and dump its evidence
//	termchaos -check trace.jsonl       # offline-check an exported trace file
//
// Exit status 1 means at least one invariant violation (or an unexpected
// run error); 0 means the whole corpus is clean.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"termproto/internal/chaos"
	"termproto/internal/check"
	"termproto/internal/trace"
)

func main() {
	var (
		n           = flag.Int("n", 1000, "number of seeds to run (starting at -seed)")
		seed        = flag.Uint64("seed", 1, "first seed of the corpus")
		backend     = flag.String("backend", "sim", "sim (deterministic) or net (real termnode processes)")
		family      = flag.String("family", "", "restrict the corpus to one family (happy-path, abort-heavy, timeout, stress, migration-under-partition)")
		replay      = flag.Uint64("replay", 0, "re-run this one seed and dump its scenario, violations, and per-txn history")
		checkFile   = flag.String("check", "", "offline-check this trace JSONL file instead of running scenarios")
		skipBounds  = flag.Bool("skip-bounds", false, "with -check: skip the §6 bound rule (wall-clock traces)")
		artifactDir = flag.String("artifact-dir", "", "write failing seeds' traces and violation reports here")
		workdir     = flag.String("workdir", "", "with -backend net: localnet workspace root (default: temp dirs)")
		verbose     = flag.Bool("v", false, "print every scenario as it runs")
	)
	flag.Parse()

	switch {
	case *checkFile != "":
		os.Exit(checkTraceFile(*checkFile, *skipBounds))
	case *replay != 0:
		os.Exit(replaySeed(*replay, *backend, *workdir))
	default:
		os.Exit(runCorpus(*seed, *n, *backend, *family, *workdir, *artifactDir, *verbose))
	}
}

// scenarioFor resolves a seed under the optional family restriction.
func scenarioFor(seed uint64, family string) chaos.Scenario {
	if family == "" {
		return chaos.FromSeed(seed)
	}
	return chaos.FromSeedIn(seed, chaos.Family(family))
}

// runOne executes a scenario on the chosen backend and verifies it.
func runOne(sc chaos.Scenario, backend, workdir string) (*chaos.Result, []check.Violation, error) {
	switch backend {
	case "sim":
		r, err := chaos.Run(sc)
		if err != nil {
			return nil, nil, err
		}
		return r, chaos.Verify(r), nil
	case "net":
		r, err := chaos.RunNet(sc, workdir)
		if err != nil {
			return nil, nil, err
		}
		return r, chaos.VerifyNet(r), nil
	default:
		return nil, nil, fmt.Errorf("unknown backend %q", backend)
	}
}

func runCorpus(base uint64, n int, backend, family, workdir, artifactDir string, verbose bool) int {
	if family != "" {
		known := false
		for _, f := range chaos.Families() {
			if string(f) == family {
				known = true
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "termchaos: unknown family %q (known: %v)\n", family, chaos.Families())
			return 2
		}
	}
	start := time.Now()
	perFamily := map[chaos.Family]int{}
	var failed []uint64
	ran, violations, txns := 0, 0, 0
	for s := base; s < base+uint64(n); s++ {
		sc := scenarioFor(s, family)
		if backend == "net" && !sc.NetCompatible() {
			continue // sharded/membership scenarios stay on the simulator
		}
		wd := workdir
		if wd != "" {
			wd = filepath.Join(workdir, fmt.Sprintf("seed-%d", s))
		}
		if verbose {
			fmt.Printf("running %s\n", sc)
		}
		r, vs, err := runOne(sc, backend, wd)
		if err != nil {
			fmt.Fprintf(os.Stderr, "termchaos: seed %d: %v\n", s, err)
			failed = append(failed, s)
			continue
		}
		ran++
		perFamily[sc.Family]++
		txns += len(r.Results)
		if len(vs) > 0 {
			violations += len(vs)
			failed = append(failed, s)
			fmt.Fprintf(os.Stderr, "termchaos: seed %d (%s): %d violations\n", s, sc, len(vs))
			for _, v := range vs {
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
			writeArtifacts(artifactDir, s, r, vs)
		}
	}
	fmt.Printf("termchaos: %d scenarios, %d transactions, %d violations in %s (%s backend)\n",
		ran, txns, violations, time.Since(start).Round(time.Millisecond), backend)
	for _, f := range chaos.Families() {
		if perFamily[f] > 0 {
			fmt.Printf("  %-26s %d\n", f, perFamily[f])
		}
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "termchaos: FAILING SEEDS: %v\n", failed)
		fmt.Fprintf(os.Stderr, "termchaos: reproduce any of them with: termchaos -replay <seed>\n")
		return 1
	}
	return 0
}

func replaySeed(seed uint64, backend, workdir string) int {
	sc := chaos.FromSeed(seed)
	fmt.Printf("scenario: %s\n", sc)
	for _, ev := range sc.Schedule {
		fmt.Printf("  schedule: %+v\n", ev)
	}
	r, vs, err := runOne(sc, backend, workdir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "termchaos: %v\n", err)
		return 1
	}
	fmt.Printf("%d transactions, %d trace events\n", len(r.Results), len(r.Events))
	for _, res := range r.Results {
		fmt.Printf("  txn %d: master=%d outcome=%v consistent=%v blocked=%v\n",
			res.TID, res.Master, res.Outcome(), res.Consistent(), res.Blocked())
	}
	if len(vs) == 0 {
		fmt.Println("no violations")
		return 0
	}
	for _, v := range vs {
		fmt.Printf("VIOLATION: %s\n", v)
		for _, e := range v.Events {
			fmt.Printf("    %s\n", e)
		}
	}
	return 1
}

func checkTraceFile(path string, skipBounds bool) int {
	events, err := trace.ReadJSONLFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "termchaos: %v\n", err)
		return 2
	}
	vs := check.Check(check.Input{Events: events, SkipBounds: skipBounds})
	fmt.Printf("termchaos: %d events, %d violations\n", len(events), len(vs))
	for _, v := range vs {
		fmt.Printf("VIOLATION: %s\n", v)
	}
	if len(vs) > 0 {
		return 1
	}
	return 0
}

// writeArtifacts exports a failing seed's full trace and violation report
// so CI can upload them; best-effort (the seed alone already reproduces).
func writeArtifacts(dir string, seed uint64, r *chaos.Result, vs []check.Violation) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	_ = trace.WriteJSONLFile(filepath.Join(dir, fmt.Sprintf("seed-%d.trace.jsonl", seed)), r.Events)
	f, err := os.Create(filepath.Join(dir, fmt.Sprintf("seed-%d.violations.txt", seed)))
	if err != nil {
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "%s\n\n", r.Scenario)
	for _, v := range vs {
		fmt.Fprintf(f, "%s\n", v)
		for _, e := range v.Events {
			fmt.Fprintf(f, "    %s\n", e)
		}
		fmt.Fprintln(f)
	}
}
