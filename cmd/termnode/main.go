// Command termnode runs one site of the termination protocol as a
// standalone network daemon: the protocol automata over TCP, a WAL-backed
// storage engine in the site's own workspace directory, and an admin HTTP
// API for health, state, submissions and fault injection. N termnode
// processes form a real cluster; internal/netnode/harness boots them for
// tests and cluster.NewNetBackend drives them through the standard
// Cluster API.
//
// Usage:
//
//	termnode -id 1 -addr 127.0.0.1:7101 -api-port 8101 -wal-dir /var/lib/term/node-1 \
//	         -peers "1=127.0.0.1:7101/127.0.0.1:8101,2=127.0.0.1:7102/127.0.0.1:8102,3=127.0.0.1:7103/127.0.0.1:8103"
//
// Each -peers entry is id=protoAddr[/apiAddr]; the apiAddr enables the
// recovery catch-up pull from that peer. On start the node replays its
// surviving write-ahead log, resolves in-doubt transactions with real
// MsgInquire traffic against its peers, pulls commits it missed while
// down, and only then reports ready on GET /health. -clear-data wipes the
// workspace first, for a cold start with no inherited state.
package main

import (
	"encoding/base64"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"termproto/internal/netnode"
	"termproto/internal/placement"
	"termproto/internal/proto"
	"termproto/internal/protocol/registry"
)

func main() {
	id := flag.Int("id", 0, "this site's identifier (1..n)")
	addr := flag.String("addr", "", "protocol listen address (default: this site's -peers entry)")
	apiPort := flag.Int("api-port", 0, "admin API port on 127.0.0.1 (0 with no -api: this site's -peers apiAddr)")
	api := flag.String("api", "", "admin API listen address (overrides -api-port)")
	peersSpec := flag.String("peers", "", "comma-separated id=protoAddr[/apiAddr] for every site, self included")
	walDir := flag.String("wal-dir", "", "workspace directory for the write-ahead log (required)")
	clearData := flag.Bool("clear-data", false, "wipe the workspace directory before starting")
	protoName := flag.String("proto", registry.Default, "commit protocol name")
	t := flag.Duration("t", 50*time.Millisecond, "longest end-to-end delay bound T")
	seed := flag.Int64("seed", 0, "link-delay seed (0 derives one from -id)")
	groupCommit := flag.Bool("group-commit", true, "WAL group commit: amortize one fsync over concurrent appends")
	shortCommit := flag.Bool("short-commit", false, "early lock release at prepare-ack (weakened isolation; termination protocol repairs in-doubt)")
	pipeline := flag.Bool("pipeline", false, "apply decisions while their WAL flush is in flight")
	placementSpec := flag.String("placement", "", "base64 of the encoded epoch-0 shard assignment (empty: full replication)")
	traceOut := flag.String("trace-out", "", "export a JSONL trace of protocol events to this file at shutdown (relative paths land in -wal-dir)")
	flag.Parse()

	logger := log.New(os.Stdout, fmt.Sprintf("termnode[%d] ", *id), log.LstdFlags|log.Lmicroseconds)
	tuning := tuningFlags{groupCommit: *groupCommit, shortCommit: *shortCommit, pipeline: *pipeline}
	if err := run(*id, *addr, *apiPort, *api, *peersSpec, *walDir, *clearData, *protoName, *t, *seed, *placementSpec, *traceOut, tuning, logger); err != nil {
		logger.Fatalf("fatal: %v", err)
	}
}

// tuningFlags carries the throughput-engine knobs into run.
type tuningFlags struct {
	groupCommit bool
	shortCommit bool
	pipeline    bool
}

func run(id int, addr string, apiPort int, apiAddr, peersSpec, walDir string, clearData bool,
	protoName string, t time.Duration, seed int64, placementSpec, traceOut string,
	tuning tuningFlags, logger *log.Logger) error {
	if id < 1 {
		return fmt.Errorf("-id is required and must be positive")
	}
	if walDir == "" {
		return fmt.Errorf("-wal-dir is required")
	}
	protocol, err := registry.Lookup(protoName)
	if err != nil {
		return err
	}
	peers, apiPeers, err := parsePeers(peersSpec)
	if err != nil {
		return err
	}
	self := proto.SiteID(id)
	if _, ok := peers[self]; !ok {
		return fmt.Errorf("-peers has no entry for this site (%d)", id)
	}
	if addr == "" {
		addr = peers[self]
	}
	if apiAddr == "" {
		if apiPort > 0 {
			apiAddr = "127.0.0.1:" + strconv.Itoa(apiPort)
		} else if a := apiPeers[self]; a != "" {
			apiAddr = a
		} else {
			return fmt.Errorf("need -api-port, -api, or an apiAddr in this site's -peers entry")
		}
	}

	var asg *placement.Assignment
	if placementSpec != "" {
		raw, err := base64.StdEncoding.DecodeString(placementSpec)
		if err != nil {
			return fmt.Errorf("-placement is not base64: %w", err)
		}
		if asg, err = placement.DecodeAssignment(raw); err != nil {
			return fmt.Errorf("-placement: %w", err)
		}
		if !asg.IsMember(self) {
			return fmt.Errorf("-placement assignment has no shards for this site (%d)", id)
		}
	}

	if clearData {
		if err := netnode.ClearWorkspace(walDir); err != nil {
			return err
		}
	}
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		return err
	}
	// A relative -trace-out lands in the node's own workspace, so a
	// harness can pass one uniform flag to every daemon.
	if traceOut != "" && !filepath.IsAbs(traceOut) {
		traceOut = filepath.Join(walDir, traceOut)
	}

	node := netnode.NewNode(netnode.Options{
		ID: self, Protocol: protocol, T: t,
		Addr: addr, Peers: peers, APIPeers: apiPeers,
		Placement:         asg,
		WALPath:           filepath.Join(walDir, "wal.log"),
		Seed:              seed,
		GroupCommit:       &tuning.groupCommit,
		ShortCommit:       tuning.shortCommit,
		PipelineDecisions: tuning.pipeline,
		TraceOut:          traceOut,
		Logf:              logger.Printf,
	})
	if err := node.Start(); err != nil {
		return err
	}
	bound, err := node.StartAPI(apiAddr)
	if err != nil {
		node.Close()
		return err
	}
	logger.Printf("up: proto=%s api=%s wal=%s protocol=%s T=%s group-commit=%v short-commit=%v pipeline=%v",
		node.Addr(), bound, walDir, protoName, t, tuning.groupCommit, tuning.shortCommit, tuning.pipeline)

	// SIGTERM/SIGINT is a graceful stop; a crash (SIGKILL) is the fault
	// model — the WAL in -wal-dir is what the next incarnation recovers
	// from.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigc
	logger.Printf("down: %v", sig)
	node.Close()
	return nil
}

// parsePeers parses "id=protoAddr[/apiAddr],...".
func parsePeers(spec string) (map[proto.SiteID]string, map[proto.SiteID]string, error) {
	peers := make(map[proto.SiteID]string)
	apiPeers := make(map[proto.SiteID]string)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		idStr, addrs, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, nil, fmt.Errorf("bad -peers entry %q (want id=protoAddr[/apiAddr])", entry)
		}
		id, err := strconv.Atoi(strings.TrimSpace(idStr))
		if err != nil || id < 1 {
			return nil, nil, fmt.Errorf("bad site in -peers entry %q", entry)
		}
		protoAddr, apiAddr, _ := strings.Cut(addrs, "/")
		if protoAddr == "" {
			return nil, nil, fmt.Errorf("empty address in -peers entry %q", entry)
		}
		peers[proto.SiteID(id)] = protoAddr
		if apiAddr != "" {
			apiPeers[proto.SiteID(id)] = apiAddr
		}
	}
	if len(peers) == 0 {
		return nil, nil, fmt.Errorf("-peers is required")
	}
	return peers, apiPeers, nil
}
