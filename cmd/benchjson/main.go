// Command benchjson measures committed-transaction throughput and writes
// the results as machine-readable JSON, so the performance trajectory can
// be tracked across PRs without scraping `go test -bench` output.
//
// Two suites run:
//
//   - protocols: the C1 shape — a 5-site cluster serving 24 concurrent
//     transactions through each commit protocol while a transient
//     partition separates two sites mid-traffic; committed-txns/s plus
//     committed/blocked/inconsistent fractions per protocol.
//   - sharded scaling: the D1 shape — the sharded banking workload at
//     fixed replication factor across growing cluster sizes; the
//     committed-txns/s curve should rise with the sites.
//   - recovery churn: the E16 shape — a WAL-backed workload with one site
//     crashing and durably restarting every other batch; committed-txns/s
//     under churn plus the mean per-recovery resolution latency.
//
// With -baseline the same metrics from committed earlier reports are
// compared against this run and any committed-txns/s drop beyond 20% is
// printed as a warning — a soft regression gate for CI (machine-to-machine
// variance makes a hard gate unreasonable; the trend lives in the uploaded
// artifacts). -baseline accepts comma-separated paths and globs: when it
// matches several committed BENCH artifacts the gate compares against the
// TRAILING MEDIAN of the most recent -window of them instead of a single
// file, so one unusually fast (or slow) committed run cannot whipsaw the
// gate.
//
// Usage:
//
//	benchjson [-o BENCH_2006-01-02.json] [-iters 8] [-quick]
//	          [-baseline 'BENCH_*.json'] [-window 5]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"termproto"
	"termproto/internal/workload"
)

// protocolResult is one protocol's throughput measurement.
type protocolResult struct {
	Name              string  `json:"name"`
	CommittedTxnsPerS float64 `json:"committed_txns_per_sec"`
	CommittedFrac     float64 `json:"committed_frac"`
	BlockedFrac       float64 `json:"blocked_frac"`
	InconsistentFrac  float64 `json:"inconsistent_frac"`
}

// scalingPoint is one cluster size on the sharded-scaling curve.
type scalingPoint struct {
	Sites             int     `json:"sites"`
	Shards            int     `json:"shards"`
	ReplicationFactor int     `json:"replication_factor"`
	CommittedTxnsPerS float64 `json:"committed_txns_per_sec"`
	CommittedFrac     float64 `json:"committed_frac"`
	CrossShardFrac    float64 `json:"cross_shard_frac"`
}

// recoveryResult is the crash/recover churn measurement.
type recoveryResult struct {
	CommittedTxnsPerS float64 `json:"committed_txns_per_sec"`
	CommittedFrac     float64 `json:"committed_frac"`
	Recoveries        int     `json:"recoveries"`
	MeanRecoveryMs    float64 `json:"mean_recovery_ms"`
}

// membershipResult is the elastic-membership churn measurement: the
// sharded workload with sites leaving and rejoining every other batch.
type membershipResult struct {
	CommittedTxnsPerS float64 `json:"committed_txns_per_sec"`
	CommittedFrac     float64 `json:"committed_frac"`
	Migrations        int     `json:"migrations"`
	KeysMigrated      int     `json:"keys_migrated"`
}

// report is the whole BENCH_<date>.json document.
type report struct {
	Date            string            `json:"date"`
	Iters           int               `json:"iters"`
	Protocols       []protocolResult  `json:"protocols"`
	ShardedScaling  []scalingPoint    `json:"sharded_scaling"`
	RecoveryChurn   *recoveryResult   `json:"recovery_churn,omitempty"`
	MembershipChurn *membershipResult `json:"membership_churn,omitempty"`
}

var protocols = []struct {
	name string
	p    termproto.Protocol
}{
	{"2pc", termproto.TwoPC()},
	{"2pc-ext", termproto.TwoPCExtended()},
	{"3pc", termproto.ThreePC(false)},
	{"3pc-rules", termproto.ThreePCRules()},
	{"cooperative", termproto.Cooperative()},
	{"quorum", termproto.Quorum()},
	{"termination", termproto.TerminationTransient()},
	{"4pc-termination", termproto.FourPCTermination()},
}

func measureProtocol(p termproto.Protocol, iters int) protocolResult {
	const sites, txns = 5, 24
	var committed, blocked, inconsistent int
	start := time.Now()
	for i := 0; i < iters; i++ {
		c, err := termproto.Open(termproto.ClusterConfig{
			Sites:    sites,
			Protocol: p,
			Schedule: termproto.Schedule{
				termproto.TransientPartitionAt(2500, 8500, 4, 5),
			},
			Backend: termproto.NewSimBackend(termproto.SimOptions{Seed: uint64(i + 1)}),
		})
		if err != nil {
			fatal(err)
		}
		batch := make([]termproto.Txn, txns)
		for j := range batch {
			batch[j].At = termproto.Time(j) * 500
		}
		if _, err := c.SubmitBatch(batch); err != nil {
			fatal(err)
		}
		if err := c.Wait(); err != nil {
			fatal(err)
		}
		st := c.Stats()
		committed += st.Committed
		blocked += st.Blocked
		inconsistent += st.Inconsistent
		c.Close()
	}
	elapsed := time.Since(start).Seconds()
	total := float64(iters * txns)
	return protocolResult{
		CommittedTxnsPerS: float64(committed) / elapsed,
		CommittedFrac:     float64(committed) / total,
		BlockedFrac:       float64(blocked) / total,
		InconsistentFrac:  float64(inconsistent) / total,
	}
}

func measureScaling(sites, rf, iters int) scalingPoint {
	var committed, crossShard, txns int
	start := time.Now()
	for i := 0; i < iters; i++ {
		st, _ := workload.Run(workload.Config{
			Sites:    sites,
			Protocol: termproto.TerminationTransient(),
			Shards:   sites, ReplicationFactor: rf,
			Accounts: 3 * sites, InitialBalance: 1 << 30,
			Txns: 24 * sites, Concurrency: 48,
			Seed: uint64(i + 1),
		})
		if st.Inconsistent != 0 || st.Undecided != 0 || !st.Replicated {
			fatal(fmt.Errorf("sharded workload failed at %d sites: %+v", sites, st))
		}
		committed += st.Commits
		crossShard += st.CrossShard
		txns += st.Txns
	}
	elapsed := time.Since(start).Seconds()
	return scalingPoint{
		Sites: sites, Shards: sites, ReplicationFactor: rf,
		CommittedTxnsPerS: float64(committed) / elapsed,
		CommittedFrac:     float64(committed) / float64(txns),
		CrossShardFrac:    float64(crossShard) / float64(txns),
	}
}

func measureRecovery(iters int) recoveryResult {
	var committed, txns, recoveries int
	var recoveryTime float64
	start := time.Now()
	for i := 0; i < iters; i++ {
		st, _ := workload.Run(workload.Config{
			Sites: 5, Protocol: termproto.TerminationTransient(),
			Accounts: 16, InitialBalance: 1 << 30, Txns: 64,
			Concurrency: 8, CrashRecoverEvery: 2,
			Zipf: 0.8, OpsPerTxn: 3, Seed: uint64(i + 1),
		})
		if st.Inconsistent != 0 || st.Undecided != 0 || !st.Replicated || st.Unresolved != 0 {
			fatal(fmt.Errorf("recovery churn workload failed: %+v", st))
		}
		committed += st.Commits
		txns += st.Txns
		recoveries += st.Recoveries
		recoveryTime += st.RecoveryTime.Seconds()
	}
	elapsed := time.Since(start).Seconds()
	out := recoveryResult{
		CommittedTxnsPerS: float64(committed) / elapsed,
		CommittedFrac:     float64(committed) / float64(txns),
		Recoveries:        recoveries,
	}
	if recoveries > 0 {
		out.MeanRecoveryMs = recoveryTime * 1000 / float64(recoveries)
	}
	return out
}

// loadBaselines expands the -baseline spec (comma-separated paths and
// globs) into parsed reports and keeps the `window` most recent by date
// (path as tiebreak).
func loadBaselines(spec string, window int) []report {
	var paths []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if matches, err := filepath.Glob(part); err == nil && len(matches) > 0 {
			paths = append(paths, matches...)
		} else if err == nil {
			fmt.Printf("baseline: %s matched nothing\n", part)
		} else {
			fmt.Printf("baseline: bad pattern %s (%v)\n", part, err)
		}
	}
	sort.Strings(paths)
	type dated struct {
		path string
		rep  report
	}
	var reps []dated
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Printf("baseline: skipped %s (%v)\n", path, err)
			continue
		}
		var r report
		if err := json.Unmarshal(data, &r); err != nil {
			fmt.Printf("baseline: skipped %s (unparseable: %v)\n", path, err)
			continue
		}
		reps = append(reps, dated{path, r})
	}
	// Most recent first; undated reports (e.g. a hand-kept baseline) sort
	// last so dated artifacts take precedence inside the window.
	sort.SliceStable(reps, func(i, j int) bool { return reps[i].rep.Date > reps[j].rep.Date })
	if len(reps) > window {
		reps = reps[:window]
	}
	out := make([]report, 0, len(reps))
	for _, d := range reps {
		out = append(out, d.rep)
	}
	return out
}

// median returns the middle value (mean of the middle two for even
// counts); 0 for an empty slice.
func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid]
	}
	return (vals[mid-1] + vals[mid]) / 2
}

func measureMembership(iters int) membershipResult {
	var committed, txns, migrations, keys int
	start := time.Now()
	for i := 0; i < iters; i++ {
		st, _ := workload.Run(workload.Config{
			Sites: 6, Protocol: termproto.TerminationTransient(),
			Shards: 6, ReplicationFactor: 3,
			Accounts: 18, InitialBalance: 1 << 30, Txns: 48,
			Concurrency: 8, JoinLeaveEvery: 2, Seed: uint64(i + 1),
		})
		if st.Inconsistent != 0 || st.Undecided != 0 || !st.Replicated || !st.Conserved {
			fatal(fmt.Errorf("membership churn workload failed: %+v", st))
		}
		committed += st.Commits
		txns += st.Txns
		migrations += st.Joins + st.Leaves
		keys += st.KeysMigrated
	}
	elapsed := time.Since(start).Seconds()
	return membershipResult{
		CommittedTxnsPerS: float64(committed) / elapsed,
		CommittedFrac:     float64(committed) / float64(txns),
		Migrations:        migrations,
		KeysMigrated:      keys,
	}
}

// checkBaseline compares this run's committed-txns/s numbers against the
// trailing median of the committed earlier reports matching the spec and
// prints a warning for every drop beyond 20%. Soft by design: it never
// fails the build.
func checkBaseline(spec string, window int, cur report) {
	bases := loadBaselines(spec, window)
	if len(bases) == 0 {
		fmt.Printf("baseline: skipped (no usable reports for %s)\n", spec)
		return
	}
	warns := 0
	warn := func(what string, baseV, curV float64) {
		if baseV <= 0 || curV >= 0.8*baseV {
			return
		}
		warns++
		fmt.Printf("WARNING: %s committed-txns/s dropped %.0f%% vs trailing median (%.0f -> %.0f)\n",
			what, 100*(1-curV/baseV), baseV, curV)
	}
	for _, p := range cur.Protocols {
		var vals []float64
		for _, b := range bases {
			for _, bp := range b.Protocols {
				if bp.Name == p.Name {
					vals = append(vals, bp.CommittedTxnsPerS)
				}
			}
		}
		warn("protocol "+p.Name, median(vals), p.CommittedTxnsPerS)
	}
	for _, s := range cur.ShardedScaling {
		var vals []float64
		for _, b := range bases {
			for _, bs := range b.ShardedScaling {
				if bs.Sites == s.Sites {
					vals = append(vals, bs.CommittedTxnsPerS)
				}
			}
		}
		warn(fmt.Sprintf("sharded n=%d", s.Sites), median(vals), s.CommittedTxnsPerS)
	}
	if cur.RecoveryChurn != nil {
		var vals []float64
		for _, b := range bases {
			if b.RecoveryChurn != nil {
				vals = append(vals, b.RecoveryChurn.CommittedTxnsPerS)
			}
		}
		warn("recovery churn", median(vals), cur.RecoveryChurn.CommittedTxnsPerS)
	}
	if cur.MembershipChurn != nil {
		var vals []float64
		for _, b := range bases {
			if b.MembershipChurn != nil {
				vals = append(vals, b.MembershipChurn.CommittedTxnsPerS)
			}
		}
		warn("membership churn", median(vals), cur.MembershipChurn.CommittedTxnsPerS)
	}
	if warns == 0 {
		fmt.Printf("baseline: no regressions beyond 20%% vs trailing median of %d report(s) for %s\n",
			len(bases), spec)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}

func main() {
	date := time.Now().Format("2006-01-02")
	out := flag.String("o", "BENCH_"+date+".json", "output path")
	iters := flag.Int("iters", 8, "iterations per measurement")
	quick := flag.Bool("quick", false, "2 iterations, small scaling sweep (CI smoke)")
	baseline := flag.String("baseline", "", "earlier reports (comma-separated paths/globs) to soft-check regressions against the trailing median of")
	window := flag.Int("window", 5, "how many of the most recent baseline reports form the trailing median")
	flag.Parse()
	if *quick {
		*iters = 2
	}

	rep := report{Date: date, Iters: *iters}
	for _, pc := range protocols {
		r := measureProtocol(pc.p, *iters)
		r.Name = pc.name
		rep.Protocols = append(rep.Protocols, r)
		fmt.Printf("%-16s %10.0f committed-txns/s  committed=%.2f blocked=%.2f inconsistent=%.2f\n",
			pc.name, r.CommittedTxnsPerS, r.CommittedFrac, r.BlockedFrac, r.InconsistentFrac)
	}
	sizes := []int{6, 12, 24}
	if *quick {
		sizes = []int{6, 12}
	}
	for _, sites := range sizes {
		pt := measureScaling(sites, 3, *iters)
		rep.ShardedScaling = append(rep.ShardedScaling, pt)
		fmt.Printf("sharded n=%-3d rf=%d %10.0f committed-txns/s  committed=%.2f cross-shard=%.2f\n",
			pt.Sites, pt.ReplicationFactor, pt.CommittedTxnsPerS, pt.CommittedFrac, pt.CrossShardFrac)
	}
	rc := measureRecovery(*iters)
	rep.RecoveryChurn = &rc
	fmt.Printf("recovery churn   %10.0f committed-txns/s  committed=%.2f recoveries=%d mean-recovery=%.2fms\n",
		rc.CommittedTxnsPerS, rc.CommittedFrac, rc.Recoveries, rc.MeanRecoveryMs)
	mc := measureMembership(*iters)
	rep.MembershipChurn = &mc
	fmt.Printf("membership churn %10.0f committed-txns/s  committed=%.2f migrations=%d keys-migrated=%d\n",
		mc.CommittedTxnsPerS, mc.CommittedFrac, mc.Migrations, mc.KeysMigrated)
	if *baseline != "" {
		checkBaseline(*baseline, *window, rep)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
