// Command benchjson measures committed-transaction throughput and writes
// the results as machine-readable JSON, so the performance trajectory can
// be tracked across PRs without scraping `go test -bench` output.
//
// The suites:
//
//   - protocols: the C1 shape — a 5-site cluster serving 24 concurrent
//     transactions through each commit protocol while a transient
//     partition separates two sites mid-traffic; committed-txns/s plus
//     committed/blocked/inconsistent fractions per protocol.
//   - throughput: the partition-free commit path at full speed — every
//     transaction submitted at the same instant, measured plain and with
//     protocol-round coalescing (-batch), plus the WAL-backed banking
//     workload plain / batched / batched+short-commit, the FileStore
//     group-commit fsync amortization, and the zero-alloc wire hot path
//     (testing.Benchmark with ReportAllocs).
//   - sharded scaling: the D1 shape — the sharded banking workload at
//     fixed replication factor across growing cluster sizes; the
//     committed-txns/s curve should rise with the sites.
//   - recovery churn: the E16 shape — a WAL-backed workload with one site
//     crashing and durably restarting every other batch; committed-txns/s
//     under churn plus the mean per-recovery resolution latency.
//   - availability: the partition-local availability scenario — a 5-site
//     sharded directory cluster with a transient partition isolating the
//     two-site minority; committed-txns/s measured separately for
//     shard-local traffic on the majority and minority sides during the
//     partition window. The minority rate must stay above zero (the side
//     hosts a full replica set of one shard) or the run fails outright.
//
// With -baseline the same metrics from committed earlier reports are
// compared against this run and any committed-txns/s drop beyond 20% —
// or any allocs/op increase on the wire hot path — is printed as a
// warning; with -gate the throughput-suite and hot-path warnings fail
// the run (exit 1), the hard regression gate CI runs against the
// trailing median (the small-iteration legacy suites stay warnings —
// they swing past 20% on runner noise alone). -baseline accepts
// comma-separated paths and globs: when it matches several committed
// BENCH artifacts the gate compares against the TRAILING MEDIAN of the
// most recent -window of them instead of a single file, so one unusually
// fast (or slow) committed run cannot whipsaw the gate.
//
// Usage:
//
//	benchjson [-o BENCH_2006-01-02.json] [-iters 8] [-quick]
//	          [-batch=true] [-group-commit=true] [-short-commit=true]
//	          [-baseline 'BENCH_*.json'] [-window 5] [-gate]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"termproto"
	"termproto/internal/chaos"
	"termproto/internal/db/wal"
	"termproto/internal/netnode"
	"termproto/internal/obs"
	"termproto/internal/proto"
	"termproto/internal/workload"
)

// protocolResult is one protocol's throughput measurement. The latency
// quantiles are commit latency (submit→decided, committed transactions
// only) in simulator ticks (T = 1000), pooled across the iterations'
// merged histograms.
type protocolResult struct {
	Name              string  `json:"name"`
	CommittedTxnsPerS float64 `json:"committed_txns_per_sec"`
	CommittedFrac     float64 `json:"committed_frac"`
	BlockedFrac       float64 `json:"blocked_frac"`
	InconsistentFrac  float64 `json:"inconsistent_frac"`
	CommitP50Ticks    float64 `json:"commit_latency_p50_ticks,omitempty"`
	CommitP99Ticks    float64 `json:"commit_latency_p99_ticks,omitempty"`
}

// scalingPoint is one cluster size on the sharded-scaling curve.
type scalingPoint struct {
	Sites             int     `json:"sites"`
	Shards            int     `json:"shards"`
	ReplicationFactor int     `json:"replication_factor"`
	CommittedTxnsPerS float64 `json:"committed_txns_per_sec"`
	CommittedFrac     float64 `json:"committed_frac"`
	CrossShardFrac    float64 `json:"cross_shard_frac"`
}

// recoveryResult is the crash/recover churn measurement.
type recoveryResult struct {
	CommittedTxnsPerS float64 `json:"committed_txns_per_sec"`
	CommittedFrac     float64 `json:"committed_frac"`
	Recoveries        int     `json:"recoveries"`
	MeanRecoveryMs    float64 `json:"mean_recovery_ms"`
}

// membershipResult is the elastic-membership churn measurement: the
// sharded workload with sites leaving and rejoining every other batch.
type membershipResult struct {
	CommittedTxnsPerS float64 `json:"committed_txns_per_sec"`
	CommittedFrac     float64 `json:"committed_frac"`
	Migrations        int     `json:"migrations"`
	KeysMigrated      int     `json:"keys_migrated"`
}

// chaosResult is the chaos corpus measurement: a fixed seed range on
// the simulator with every history machine-checked offline. Violations
// is a safety count, not a performance column — any nonzero value
// fails the run outright (like availability's inconsistent check),
// with or without -gate. CheckerMs is the offline checker's total wall
// time, the row's only performance signal.
type chaosResult struct {
	Scenarios    int     `json:"scenarios"`
	Transactions int     `json:"transactions"`
	Violations   int     `json:"violations"`
	CheckerMs    float64 `json:"checker_ms"`
}

// availabilityResult is the partition-local availability measurement:
// per-side committed-txns/s for shard-local traffic submitted while a
// transient partition isolates the two-site minority.
type availabilityResult struct {
	MajorityTxnsPerS float64 `json:"majority_committed_txns_per_sec"`
	MinorityTxnsPerS float64 `json:"minority_committed_txns_per_sec"`
	CommittedFrac    float64 `json:"committed_frac"`
	InconsistentFrac float64 `json:"inconsistent_frac"`
}

// throughputResult is one row of the throughput suite: a protocol or
// workload shape at one batching/commit configuration, with pooled
// commit-latency quantiles in ticks.
type throughputResult struct {
	Name              string  `json:"name"`
	Mode              string  `json:"mode"`
	CommittedTxnsPerS float64 `json:"committed_txns_per_sec"`
	CommittedFrac     float64 `json:"committed_frac"`
	InconsistentFrac  float64 `json:"inconsistent_frac"`
	CommitP50Ticks    float64 `json:"commit_latency_p50_ticks,omitempty"`
	CommitP99Ticks    float64 `json:"commit_latency_p99_ticks,omitempty"`
}

// walCommitResult measures FileStore WAL append throughput with real
// fsyncs, synchronous vs group commit.
type walCommitResult struct {
	Mode           string  `json:"mode"`
	RecordsPerS    float64 `json:"records_per_sec"`
	SyncsPerRecord float64 `json:"syncs_per_record"`
}

// hotPathResult is one wire-codec micro-benchmark (ReportAllocs).
type hotPathResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// report is the whole BENCH_<date>.json document.
type report struct {
	Date            string              `json:"date"`
	Iters           int                 `json:"iters"`
	Protocols       []protocolResult    `json:"protocols"`
	Throughput      []throughputResult  `json:"throughput,omitempty"`
	WalGroupCommit  []walCommitResult   `json:"wal_group_commit,omitempty"`
	HotPath         []hotPathResult     `json:"hot_path,omitempty"`
	ShardedScaling  []scalingPoint      `json:"sharded_scaling"`
	RecoveryChurn   *recoveryResult     `json:"recovery_churn,omitempty"`
	MembershipChurn *membershipResult   `json:"membership_churn,omitempty"`
	Availability    *availabilityResult `json:"availability,omitempty"`
	Chaos           *chaosResult        `json:"chaos,omitempty"`
}

var protocols = []struct {
	name string
	p    termproto.Protocol
}{
	{"2pc", termproto.TwoPC()},
	{"2pc-ext", termproto.TwoPCExtended()},
	{"3pc", termproto.ThreePC(false)},
	{"3pc-rules", termproto.ThreePCRules()},
	{"cooperative", termproto.Cooperative()},
	{"quorum", termproto.Quorum()},
	{"termination", termproto.TerminationTransient()},
	{"4pc-termination", termproto.FourPCTermination()},
}

func measureProtocol(p termproto.Protocol, iters int) protocolResult {
	const sites, txns = 5, 24
	var committed, blocked, inconsistent int
	var merged obs.Snapshot
	// Snapshotting and merging metrics is harness bookkeeping, not
	// protocol work: one iteration's protocol run is ~100µs here, so it
	// must stay outside the timed window or it deflates txns/s.
	var elapsed time.Duration
	for i := 0; i < iters; i++ {
		start := time.Now()
		c, err := termproto.Open(termproto.ClusterConfig{
			Sites:    sites,
			Protocol: p,
			Schedule: termproto.Schedule{
				termproto.TransientPartitionAt(2500, 8500, 4, 5),
			},
			Backend: termproto.NewSimBackend(termproto.SimOptions{Seed: uint64(i + 1)}),
		})
		if err != nil {
			fatal(err)
		}
		batch := make([]termproto.Txn, txns)
		for j := range batch {
			batch[j].At = termproto.Time(j) * 500
		}
		if _, err := c.SubmitBatch(batch); err != nil {
			fatal(err)
		}
		if err := c.Wait(); err != nil {
			fatal(err)
		}
		st := c.Stats()
		elapsed += time.Since(start)
		committed += st.Committed
		blocked += st.Blocked
		inconsistent += st.Inconsistent
		merged.Merge(c.Metrics())
		c.Close()
	}
	total := float64(iters * txns)
	return protocolResult{
		CommittedTxnsPerS: float64(committed) / elapsed.Seconds(),
		CommittedFrac:     float64(committed) / total,
		BlockedFrac:       float64(blocked) / total,
		InconsistentFrac:  float64(inconsistent) / total,
		CommitP50Ticks:    merged.Quantile(obs.MShardCommitLatency, 0.5),
		CommitP99Ticks:    merged.Quantile(obs.MShardCommitLatency, 0.99),
	}
}

// measureThroughput runs the partition-free commit path: 24 transactions
// submitted at the same instant on a 5-site cluster. With batching they
// coalesce into shared protocol rounds (one carrier message per round);
// without it each runs its own round. The contrast between the two modes
// is the coalescing win itself.
func measureThroughput(p termproto.Protocol, batching bool, iters int) throughputResult {
	const sites, txns = 5, 24
	var committed, inconsistent int
	var merged obs.Snapshot
	// As in measureProtocol: metrics snapshot/merge happens off the
	// clock — one run is ~100µs, the gate would see the harness.
	var elapsed time.Duration
	for i := 0; i < iters; i++ {
		start := time.Now()
		c, err := termproto.Open(termproto.ClusterConfig{
			Sites:    sites,
			Protocol: p,
			Batching: batching,
			Backend:  termproto.NewSimBackend(termproto.SimOptions{Seed: uint64(i + 1)}),
		})
		if err != nil {
			fatal(err)
		}
		// Every transaction at At=0: the maximally coalescible instant.
		if _, err := c.SubmitBatch(make([]termproto.Txn, txns)); err != nil {
			fatal(err)
		}
		if err := c.Wait(); err != nil {
			fatal(err)
		}
		st := c.Stats()
		elapsed += time.Since(start)
		committed += st.Committed
		inconsistent += st.Inconsistent
		merged.Merge(c.Metrics())
		c.Close()
	}
	total := float64(iters * txns)
	return throughputResult{
		CommittedTxnsPerS: float64(committed) / elapsed.Seconds(),
		CommittedFrac:     float64(committed) / total,
		InconsistentFrac:  float64(inconsistent) / total,
		CommitP50Ticks:    merged.Quantile(obs.MShardCommitLatency, 0.5),
		CommitP99Ticks:    merged.Quantile(obs.MShardCommitLatency, 0.99),
	}
}

// measureDBThroughput runs the WAL-backed banking workload — engines,
// locks, real transaction bodies — at one batching/commit configuration.
// Short-commit releases locks at prepare-ack, so its row skips the
// replication assertion: isolation is deliberately weakened and an abort
// arriving after early release restores pre-images last-writer-wins.
func measureDBThroughput(batch, groupCommit, shortCommit bool, iters int) throughputResult {
	var committed, txns, inconsistent int
	var merged obs.Snapshot
	start := time.Now()
	for i := 0; i < iters; i++ {
		cfg := workload.Config{
			Sites: 5, Protocol: termproto.TerminationTransient(),
			Accounts: 64, InitialBalance: 1 << 30, Txns: 64,
			Concurrency: 8, Batch: batch, Seed: uint64(i + 1),
		}
		if groupCommit {
			cfg.Engine.WAL = wal.GroupCommitDefaults()
		}
		cfg.Engine.ShortCommit = shortCommit
		st, _ := workload.Run(cfg)
		if st.Undecided != 0 {
			fatal(fmt.Errorf("db throughput workload left %d undecided: %+v", st.Undecided, st))
		}
		if !shortCommit && (st.Inconsistent != 0 || !st.Replicated || !st.Conserved) {
			fatal(fmt.Errorf("db throughput workload failed: %+v", st))
		}
		committed += st.Commits
		txns += st.Txns
		inconsistent += st.Inconsistent
		merged.Merge(st.Metrics)
	}
	elapsed := time.Since(start).Seconds()
	return throughputResult{
		CommittedTxnsPerS: float64(committed) / elapsed,
		CommittedFrac:     float64(committed) / float64(txns),
		InconsistentFrac:  float64(inconsistent) / float64(txns),
		CommitP50Ticks:    merged.Quantile(obs.MShardCommitLatency, 0.5),
		CommitP99Ticks:    merged.Quantile(obs.MShardCommitLatency, 0.99),
	}
}

// measureWalGroupCommit appends records to a real file-backed WAL from 8
// concurrent writers — synchronously (one fsync per record) or under
// group commit (one fsync per flush batch) — and reports records/s and
// the fsync amortization.
func measureWalGroupCommit(group bool) walCommitResult {
	dir, err := os.MkdirTemp("", "benchwal-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	fs, err := wal.OpenFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		fatal(err)
	}
	defer fs.Close()
	opts := wal.Options{}
	if group {
		opts = wal.GroupCommitDefaults()
	}
	l := wal.NewWith(fs, opts)
	const writers, records = 8, 200
	rec := wal.Record{Type: wal.RecUpdate, TID: 1, Key: []byte("acct/1"), Value: []byte("12345678")}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < records; r++ {
				if err := l.Append(rec); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	st := l.Stats()
	mode := "sync"
	if group {
		mode = "group-commit"
	}
	return walCommitResult{
		Mode:           mode,
		RecordsPerS:    float64(st.Records) / elapsed,
		SyncsPerRecord: float64(st.Syncs) / float64(st.Records),
	}
}

// measureHotPath runs the wire-codec micro-benchmarks through
// testing.Benchmark with allocation reporting. Every row should hold at
// 0 allocs/op — the zero-alloc hot path — and the baseline gate treats
// any increase as a regression.
func measureHotPath() []hotPathResult {
	msg := proto.Msg{
		TID: 7, From: 2, To: 5, Kind: proto.MsgXact,
		Payload: bytes.Repeat([]byte{0xAB}, 64),
	}
	env := netnode.XactEnvelope{
		Master: 1, Sites: []proto.SiteID{1, 2, 3, 4, 5}, Body: msg.Payload,
	}
	frame := new(bytes.Buffer)
	if err := netnode.WriteMsg(frame, msg); err != nil {
		fatal(err)
	}
	frameBytes := frame.Bytes()
	rows := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"wire-append-msg", func(b *testing.B) {
			b.ReportAllocs()
			buf := make([]byte, 0, 256)
			for i := 0; i < b.N; i++ {
				buf = netnode.AppendMsg(buf[:0], msg)
			}
		}},
		{"wire-append-xact", func(b *testing.B) {
			b.ReportAllocs()
			buf := make([]byte, 0, 256)
			for i := 0; i < b.N; i++ {
				buf = netnode.AppendXact(buf[:0], env)
			}
		}},
		{"wire-write-msg", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := netnode.WriteMsg(io.Discard, msg); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"wire-read-frame", func(b *testing.B) {
			b.ReportAllocs()
			rdr := bytes.NewReader(frameBytes)
			var scratch []byte
			for i := 0; i < b.N; i++ {
				rdr.Reset(frameBytes)
				body, next, err := netnode.ReadFrameInto(rdr, scratch)
				if err != nil {
					b.Fatal(err)
				}
				scratch = next
				_ = body
			}
		}},
	}
	out := make([]hotPathResult, 0, len(rows))
	for _, row := range rows {
		r := testing.Benchmark(row.fn)
		out = append(out, hotPathResult{
			Name:        row.name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return out
}

func measureScaling(sites, rf, iters int) scalingPoint {
	var committed, crossShard, txns int
	start := time.Now()
	for i := 0; i < iters; i++ {
		st, _ := workload.Run(workload.Config{
			Sites:    sites,
			Protocol: termproto.TerminationTransient(),
			Shards:   sites, ReplicationFactor: rf,
			Accounts: 3 * sites, InitialBalance: 1 << 30,
			Txns: 24 * sites, Concurrency: 48,
			Seed: uint64(i + 1),
		})
		if st.Inconsistent != 0 || st.Undecided != 0 || !st.Replicated {
			fatal(fmt.Errorf("sharded workload failed at %d sites: %+v", sites, st))
		}
		committed += st.Commits
		crossShard += st.CrossShard
		txns += st.Txns
	}
	elapsed := time.Since(start).Seconds()
	return scalingPoint{
		Sites: sites, Shards: sites, ReplicationFactor: rf,
		CommittedTxnsPerS: float64(committed) / elapsed,
		CommittedFrac:     float64(committed) / float64(txns),
		CrossShardFrac:    float64(crossShard) / float64(txns),
	}
}

func measureRecovery(iters int) recoveryResult {
	var committed, txns, recoveries int
	var recoveryTime float64
	start := time.Now()
	for i := 0; i < iters; i++ {
		st, _ := workload.Run(workload.Config{
			Sites: 5, Protocol: termproto.TerminationTransient(),
			Accounts: 16, InitialBalance: 1 << 30, Txns: 64,
			Concurrency: 8, CrashRecoverEvery: 2,
			Zipf: 0.8, OpsPerTxn: 3, Seed: uint64(i + 1),
		})
		if st.Inconsistent != 0 || st.Undecided != 0 || !st.Replicated || st.Unresolved != 0 {
			fatal(fmt.Errorf("recovery churn workload failed: %+v", st))
		}
		committed += st.Commits
		txns += st.Txns
		recoveries += st.Recoveries
		recoveryTime += st.RecoveryTime.Seconds()
	}
	elapsed := time.Since(start).Seconds()
	out := recoveryResult{
		CommittedTxnsPerS: float64(committed) / elapsed,
		CommittedFrac:     float64(committed) / float64(txns),
		Recoveries:        recoveries,
	}
	if recoveries > 0 {
		out.MeanRecoveryMs = recoveryTime * 1000 / float64(recoveries)
	}
	return out
}

// loadBaselines expands the -baseline spec (comma-separated paths and
// globs) into parsed reports and keeps the `window` most recent by date
// (path as tiebreak).
func loadBaselines(spec string, window int) []report {
	var paths []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if matches, err := filepath.Glob(part); err == nil && len(matches) > 0 {
			paths = append(paths, matches...)
		} else if err == nil {
			fmt.Printf("baseline: %s matched nothing\n", part)
		} else {
			fmt.Printf("baseline: bad pattern %s (%v)\n", part, err)
		}
	}
	sort.Strings(paths)
	type dated struct {
		path string
		rep  report
	}
	var reps []dated
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Printf("baseline: skipped %s (%v)\n", path, err)
			continue
		}
		var r report
		if err := json.Unmarshal(data, &r); err != nil {
			fmt.Printf("baseline: skipped %s (unparseable: %v)\n", path, err)
			continue
		}
		reps = append(reps, dated{path, r})
	}
	// Most recent first; undated reports (e.g. a hand-kept baseline) sort
	// last so dated artifacts take precedence inside the window.
	sort.SliceStable(reps, func(i, j int) bool { return reps[i].rep.Date > reps[j].rep.Date })
	if len(reps) > window {
		reps = reps[:window]
	}
	out := make([]report, 0, len(reps))
	for _, d := range reps {
		out = append(out, d.rep)
	}
	return out
}

// median returns the middle value (mean of the middle two for even
// counts); 0 for an empty slice.
func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid]
	}
	return (vals[mid-1] + vals[mid]) / 2
}

func measureMembership(iters int) membershipResult {
	var committed, txns, migrations, keys int
	start := time.Now()
	for i := 0; i < iters; i++ {
		st, _ := workload.Run(workload.Config{
			Sites: 6, Protocol: termproto.TerminationTransient(),
			Shards: 6, ReplicationFactor: 3,
			Accounts: 18, InitialBalance: 1 << 30, Txns: 48,
			Concurrency: 8, JoinLeaveEvery: 2, Seed: uint64(i + 1),
		})
		if st.Inconsistent != 0 || st.Undecided != 0 || !st.Replicated || !st.Conserved {
			fatal(fmt.Errorf("membership churn workload failed: %+v", st))
		}
		committed += st.Commits
		txns += st.Txns
		migrations += st.Joins + st.Leaves
		keys += st.KeysMigrated
	}
	elapsed := time.Since(start).Seconds()
	return membershipResult{
		CommittedTxnsPerS: float64(committed) / elapsed,
		CommittedFrac:     float64(committed) / float64(txns),
		Migrations:        migrations,
		KeysMigrated:      keys,
	}
}

// measureAvailability runs the partition-local availability scenario: a
// 5-site cluster under a sharded directory (rf 2) with epoch leases on,
// a transient partition cutting {4,5} off mid-traffic, and shard-local
// transfers submitted on both sides inside the partition window. The
// layout guarantees each side fully hosts at least one shard, so both
// sides must keep committing — a zero minority rate is a build failure,
// not a slow run.
// measureChaos runs the first n chaos seeds on the simulator and
// verifies every history. Any violation prints with its seed (replay
// with `termchaos -replay <seed>`) and fails the run after the full
// sweep, so one bad seed does not hide others behind it.
func measureChaos(n int) chaosResult {
	var out chaosResult
	var checking time.Duration
	for s := uint64(1); s <= uint64(n); s++ {
		sc := chaos.FromSeed(s)
		r, err := chaos.Run(sc)
		if err != nil {
			fatal(fmt.Errorf("chaos seed %d: %w", s, err))
		}
		out.Scenarios++
		out.Transactions += len(r.Results)
		start := time.Now()
		vs := chaos.Verify(r)
		checking += time.Since(start)
		out.Violations += len(vs)
		for _, v := range vs {
			fmt.Fprintf(os.Stderr, "chaos seed %d: %s\n", s, v)
		}
	}
	out.CheckerMs = float64(checking.Microseconds()) / 1000
	return out
}

func measureAvailability(iters int) availabilityResult {
	const sites, shards, accounts = 5, 5, 64
	const cut, heal = 5_000, 50_000
	asg, err := termproto.ArithmeticAssignmentOver(shards, 2, []termproto.SiteID{1, 2, 3, 4, 5})
	if err != nil {
		fatal(err)
	}
	minority := map[termproto.SiteID]bool{4: true, 5: true}
	majority := map[termproto.SiteID]bool{1: true, 2: true, 3: true}
	shardWithin := func(side map[termproto.SiteID]bool) int {
		for s := 0; s < asg.Shards(); s++ {
			all := true
			for _, id := range asg.Replicas(s) {
				all = all && side[id]
			}
			if all {
				return s
			}
		}
		return -1
	}
	accountsOn := func(shard int) []int {
		var out []int
		for a := 0; a < accounts; a++ {
			if asg.ShardOf(fmt.Sprintf("acct/%d", a)) == shard {
				out = append(out, a)
			}
		}
		return out
	}
	minShard, majShard := shardWithin(minority), shardWithin(majority)
	if minShard < 0 || majShard < 0 {
		fatal(fmt.Errorf("availability layout has no side-local shard: min=%d maj=%d", minShard, majShard))
	}
	minAccts, majAccts := accountsOn(minShard), accountsOn(majShard)
	if len(minAccts) < 4 || len(majAccts) < 4 {
		fatal(fmt.Errorf("availability layout too thin: %d, %d accounts per shard", len(minAccts), len(majAccts)))
	}
	transfer := func(from, to int) []byte {
		return termproto.EncodeOps([]termproto.Op{
			{Kind: termproto.OpAdd, Key: fmt.Sprintf("acct/%d", from), Delta: -3},
			{Kind: termproto.OpAdd, Key: fmt.Sprintf("acct/%d", to), Delta: 3},
		})
	}

	const txnsPerSide = 5
	var minCommitted, majCommitted, txns, inconsistent int
	start := time.Now()
	for i := 0; i < iters; i++ {
		d := termproto.NewDirectory(asg)
		parts := make(map[termproto.SiteID]termproto.Participant, sites)
		for s := 1; s <= sites; s++ {
			id := termproto.SiteID(s)
			e := termproto.NewEngine(fmt.Sprintf("site-%d", s), &termproto.MemStore{})
			e.SetPlacement(func(key string) bool { return d.Hosts(id, key) })
			for a := 0; a < accounts; a++ {
				if key := fmt.Sprintf("acct/%d", a); asg.Hosts(id, key) {
					e.PutInt(key, 1<<30)
				}
			}
			parts[id] = e
		}
		c, err := termproto.Open(termproto.ClusterConfig{
			Sites:        sites,
			Protocol:     termproto.TerminationTransient(),
			Backend:      termproto.NewSimBackend(termproto.SimOptions{Seed: uint64(i + 1)}),
			Directory:    d,
			Participants: parts,
			LeaseTTL:     30 * termproto.T,
			Schedule: termproto.Schedule{
				termproto.TransientPartitionAt(cut, heal, 4, 5),
			},
		})
		if err != nil {
			fatal(err)
		}
		// Disjoint account pairs per in-flight transaction: no outcome may
		// hinge on a write-conflict no-vote.
		var minRes, majRes []*termproto.TxnResult
		for j := 0; j < txnsPerSide; j++ {
			at := termproto.Time(8_000 + j*6_000) // all inside (cut, heal)
			p := (j % 2) * 2
			rMin, err := c.Submit(termproto.Txn{Payload: transfer(minAccts[p], minAccts[p+1]), At: at})
			if err != nil {
				fatal(err)
			}
			rMaj, err := c.Submit(termproto.Txn{Payload: transfer(majAccts[p], majAccts[p+1]), At: at})
			if err != nil {
				fatal(err)
			}
			minRes = append(minRes, rMin)
			majRes = append(majRes, rMaj)
		}
		if err := c.Wait(); err != nil {
			fatal(err)
		}
		for _, r := range minRes {
			if r.Committed() {
				minCommitted++
			}
		}
		for _, r := range majRes {
			if r.Committed() {
				majCommitted++
			}
		}
		st := c.Stats()
		txns += 2 * txnsPerSide
		inconsistent += st.Inconsistent
		c.Close()
	}
	elapsed := time.Since(start).Seconds()
	if minCommitted == 0 {
		fatal(fmt.Errorf("availability: minority side committed nothing during the partition"))
	}
	if inconsistent != 0 {
		fatal(fmt.Errorf("availability: %d inconsistent transactions", inconsistent))
	}
	return availabilityResult{
		MajorityTxnsPerS: float64(majCommitted) / elapsed,
		MinorityTxnsPerS: float64(minCommitted) / elapsed,
		CommittedFrac:    float64(minCommitted+majCommitted) / float64(txns),
		InconsistentFrac: float64(inconsistent) / float64(txns),
	}
}

// checkBaseline compares this run's committed-txns/s numbers against the
// trailing median of the committed earlier reports matching the spec and
// flags every drop beyond 20% — and, for the wire hot path, any
// allocs/op increase at all (allocation counts are deterministic). It
// returns the number of GATED regressions — the throughput suite's
// committed-txns/s and the hot path's allocs/op, the rows -gate turns
// into build failures. The older suites (protocol sweep, sharded
// scaling, churn) run at small iteration counts and swing well past 20%
// with runner noise, so their drops always stay warnings.
func checkBaseline(spec string, window int, cur report) int {
	bases := loadBaselines(spec, window)
	if len(bases) == 0 {
		fmt.Printf("baseline: skipped (no usable reports for %s)\n", spec)
		return 0
	}
	gated, warns := 0, 0
	check := func(what string, baseV, curV float64, gate bool) {
		if baseV <= 0 || curV >= 0.8*baseV {
			return
		}
		warns++
		if gate {
			gated++
		}
		fmt.Printf("WARNING: %s committed-txns/s dropped %.0f%% vs trailing median (%.0f -> %.0f)\n",
			what, 100*(1-curV/baseV), baseV, curV)
	}
	warn := func(what string, baseV, curV float64) { check(what, baseV, curV, false) }
	for _, p := range cur.Protocols {
		var vals []float64
		for _, b := range bases {
			for _, bp := range b.Protocols {
				if bp.Name == p.Name {
					vals = append(vals, bp.CommittedTxnsPerS)
				}
			}
		}
		warn("protocol "+p.Name, median(vals), p.CommittedTxnsPerS)
	}
	for _, t := range cur.Throughput {
		var vals []float64
		for _, b := range bases {
			for _, bt := range b.Throughput {
				if bt.Name == t.Name && bt.Mode == t.Mode {
					vals = append(vals, bt.CommittedTxnsPerS)
				}
			}
		}
		check(fmt.Sprintf("throughput %s/%s", t.Name, t.Mode), median(vals), t.CommittedTxnsPerS, true)
	}
	for _, h := range cur.HotPath {
		var vals []float64
		for _, b := range bases {
			for _, bh := range b.HotPath {
				if bh.Name == h.Name {
					vals = append(vals, float64(bh.AllocsPerOp))
				}
			}
		}
		if m := median(vals); len(vals) > 0 && float64(h.AllocsPerOp) > m {
			warns++
			gated++
			fmt.Printf("WARNING: hot path %s allocs/op rose vs trailing median (%.0f -> %d)\n",
				h.Name, m, h.AllocsPerOp)
		}
	}
	for _, s := range cur.ShardedScaling {
		var vals []float64
		for _, b := range bases {
			for _, bs := range b.ShardedScaling {
				if bs.Sites == s.Sites {
					vals = append(vals, bs.CommittedTxnsPerS)
				}
			}
		}
		warn(fmt.Sprintf("sharded n=%d", s.Sites), median(vals), s.CommittedTxnsPerS)
	}
	if cur.RecoveryChurn != nil {
		var vals []float64
		for _, b := range bases {
			if b.RecoveryChurn != nil {
				vals = append(vals, b.RecoveryChurn.CommittedTxnsPerS)
			}
		}
		warn("recovery churn", median(vals), cur.RecoveryChurn.CommittedTxnsPerS)
	}
	if cur.MembershipChurn != nil {
		var vals []float64
		for _, b := range bases {
			if b.MembershipChurn != nil {
				vals = append(vals, b.MembershipChurn.CommittedTxnsPerS)
			}
		}
		warn("membership churn", median(vals), cur.MembershipChurn.CommittedTxnsPerS)
	}
	if cur.Availability != nil {
		var majs, mins []float64
		for _, b := range bases {
			if b.Availability != nil {
				majs = append(majs, b.Availability.MajorityTxnsPerS)
				mins = append(mins, b.Availability.MinorityTxnsPerS)
			}
		}
		warn("availability majority-side", median(majs), cur.Availability.MajorityTxnsPerS)
		warn("availability minority-side", median(mins), cur.Availability.MinorityTxnsPerS)
	}
	if warns == 0 {
		fmt.Printf("baseline: no regressions beyond 20%% vs trailing median of %d report(s) for %s\n",
			len(bases), spec)
	}
	return gated
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}

func main() {
	date := time.Now().Format("2006-01-02")
	out := flag.String("o", "BENCH_"+date+".json", "output path")
	iters := flag.Int("iters", 8, "iterations per measurement")
	quick := flag.Bool("quick", false, "2 iterations, small scaling sweep (CI smoke)")
	batch := flag.Bool("batch", true, "measure the batched (coalesced protocol rounds) throughput modes")
	groupCommit := flag.Bool("group-commit", true, "measure the WAL group-commit modes (FileStore fsync amortization, batched db workload)")
	shortCommit := flag.Bool("short-commit", false, "add the short-commit (early lock release) db workload row")
	baseline := flag.String("baseline", "", "earlier reports (comma-separated paths/globs) to check regressions against the trailing median of")
	window := flag.Int("window", 5, "how many of the most recent baseline reports form the trailing median")
	gate := flag.Bool("gate", false, "exit 1 on any baseline regression (hard CI gate) instead of warning")
	flag.Parse()
	if *quick {
		*iters = 2
	}

	rep := report{Date: date, Iters: *iters}
	for _, pc := range protocols {
		r := measureProtocol(pc.p, *iters)
		r.Name = pc.name
		rep.Protocols = append(rep.Protocols, r)
		fmt.Printf("%-16s %10.0f committed-txns/s  committed=%.2f blocked=%.2f inconsistent=%.2f commit-lat p50=%.0f p99=%.0f ticks\n",
			pc.name, r.CommittedTxnsPerS, r.CommittedFrac, r.BlockedFrac, r.InconsistentFrac,
			r.CommitP50Ticks, r.CommitP99Ticks)
	}

	// Throughput suite: the partition-free commit path, plain vs
	// coalesced, then the WAL-backed workload across the commit variants.
	tpProtocols := []struct {
		name string
		p    termproto.Protocol
	}{
		{"2pc", termproto.TwoPC()},
		{"termination", termproto.TerminationTransient()},
	}
	addTP := func(r throughputResult) {
		rep.Throughput = append(rep.Throughput, r)
		fmt.Printf("throughput %-12s %-18s %10.0f committed-txns/s  committed=%.2f inconsistent=%.2f commit-lat p50=%.0f p99=%.0f ticks\n",
			r.Name, r.Mode, r.CommittedTxnsPerS, r.CommittedFrac, r.InconsistentFrac,
			r.CommitP50Ticks, r.CommitP99Ticks)
	}
	for _, pc := range tpProtocols {
		r := measureThroughput(pc.p, false, *iters)
		r.Name, r.Mode = pc.name, "plain"
		addTP(r)
		if *batch {
			r = measureThroughput(pc.p, true, *iters)
			r.Name, r.Mode = pc.name, "batch"
			addTP(r)
		}
	}
	dbr := measureDBThroughput(false, false, false, *iters)
	dbr.Name, dbr.Mode = "workload-db", "plain"
	addTP(dbr)
	if *batch {
		dbr = measureDBThroughput(true, *groupCommit, false, *iters)
		dbr.Name, dbr.Mode = "workload-db", "batch"
		addTP(dbr)
	}
	if *shortCommit {
		dbr = measureDBThroughput(*batch, *groupCommit, true, *iters)
		dbr.Name, dbr.Mode = "workload-db", "batch+short-commit"
		addTP(dbr)
	}
	if *groupCommit {
		for _, group := range []bool{false, true} {
			wr := measureWalGroupCommit(group)
			rep.WalGroupCommit = append(rep.WalGroupCommit, wr)
			fmt.Printf("wal filestore %-18s %10.0f records/s  syncs/record=%.3f\n",
				wr.Mode, wr.RecordsPerS, wr.SyncsPerRecord)
		}
	}
	rep.HotPath = measureHotPath()
	for _, h := range rep.HotPath {
		fmt.Printf("hot path %-18s %10.1f ns/op  %d allocs/op  %d B/op\n",
			h.Name, h.NsPerOp, h.AllocsPerOp, h.BytesPerOp)
	}
	sizes := []int{6, 12, 24}
	if *quick {
		sizes = []int{6, 12}
	}
	for _, sites := range sizes {
		pt := measureScaling(sites, 3, *iters)
		rep.ShardedScaling = append(rep.ShardedScaling, pt)
		fmt.Printf("sharded n=%-3d rf=%d %10.0f committed-txns/s  committed=%.2f cross-shard=%.2f\n",
			pt.Sites, pt.ReplicationFactor, pt.CommittedTxnsPerS, pt.CommittedFrac, pt.CrossShardFrac)
	}
	rc := measureRecovery(*iters)
	rep.RecoveryChurn = &rc
	fmt.Printf("recovery churn   %10.0f committed-txns/s  committed=%.2f recoveries=%d mean-recovery=%.2fms\n",
		rc.CommittedTxnsPerS, rc.CommittedFrac, rc.Recoveries, rc.MeanRecoveryMs)
	mc := measureMembership(*iters)
	rep.MembershipChurn = &mc
	fmt.Printf("membership churn %10.0f committed-txns/s  committed=%.2f migrations=%d keys-migrated=%d\n",
		mc.CommittedTxnsPerS, mc.CommittedFrac, mc.Migrations, mc.KeysMigrated)
	av := measureAvailability(*iters)
	rep.Availability = &av
	fmt.Printf("availability     %10.0f maj / %.0f min committed-txns/s  committed=%.2f inconsistent=%.2f\n",
		av.MajorityTxnsPerS, av.MinorityTxnsPerS, av.CommittedFrac, av.InconsistentFrac)
	chaosN := 400
	if *quick {
		chaosN = 120
	}
	cr := measureChaos(chaosN)
	rep.Chaos = &cr
	fmt.Printf("chaos            %d scenarios  %d txns  %d violations  checker=%.0fms\n",
		cr.Scenarios, cr.Transactions, cr.Violations, cr.CheckerMs)
	if cr.Violations != 0 {
		fatal(fmt.Errorf("chaos: %d invariant violation(s) — reproduce with `go run ./cmd/termchaos -replay <seed>`", cr.Violations))
	}
	regressions := 0
	if *baseline != "" {
		regressions = checkBaseline(*baseline, *window, rep)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
	if *gate && regressions > 0 {
		fatal(fmt.Errorf("%d gated regression(s) vs trailing median baseline (-gate)", regressions))
	}
}
