// Command benchjson measures committed-transaction throughput and writes
// the results as machine-readable JSON, so the performance trajectory can
// be tracked across PRs without scraping `go test -bench` output.
//
// Two suites run:
//
//   - protocols: the C1 shape — a 5-site cluster serving 24 concurrent
//     transactions through each commit protocol while a transient
//     partition separates two sites mid-traffic; committed-txns/s plus
//     committed/blocked/inconsistent fractions per protocol.
//   - sharded scaling: the D1 shape — the sharded banking workload at
//     fixed replication factor across growing cluster sizes; the
//     committed-txns/s curve should rise with the sites.
//   - recovery churn: the E16 shape — a WAL-backed workload with one site
//     crashing and durably restarting every other batch; committed-txns/s
//     under churn plus the mean per-recovery resolution latency.
//
// With -baseline the same metrics from a committed earlier report are
// compared against this run and any committed-txns/s drop beyond 20% is
// printed as a warning — a soft regression gate for CI (machine-to-machine
// variance makes a hard gate unreasonable; the trend lives in the uploaded
// artifacts).
//
// Usage:
//
//	benchjson [-o BENCH_2006-01-02.json] [-iters 8] [-quick]
//	          [-baseline BENCH_baseline.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"termproto"
	"termproto/internal/workload"
)

// protocolResult is one protocol's throughput measurement.
type protocolResult struct {
	Name              string  `json:"name"`
	CommittedTxnsPerS float64 `json:"committed_txns_per_sec"`
	CommittedFrac     float64 `json:"committed_frac"`
	BlockedFrac       float64 `json:"blocked_frac"`
	InconsistentFrac  float64 `json:"inconsistent_frac"`
}

// scalingPoint is one cluster size on the sharded-scaling curve.
type scalingPoint struct {
	Sites             int     `json:"sites"`
	Shards            int     `json:"shards"`
	ReplicationFactor int     `json:"replication_factor"`
	CommittedTxnsPerS float64 `json:"committed_txns_per_sec"`
	CommittedFrac     float64 `json:"committed_frac"`
	CrossShardFrac    float64 `json:"cross_shard_frac"`
}

// recoveryResult is the crash/recover churn measurement.
type recoveryResult struct {
	CommittedTxnsPerS float64 `json:"committed_txns_per_sec"`
	CommittedFrac     float64 `json:"committed_frac"`
	Recoveries        int     `json:"recoveries"`
	MeanRecoveryMs    float64 `json:"mean_recovery_ms"`
}

// report is the whole BENCH_<date>.json document.
type report struct {
	Date           string           `json:"date"`
	Iters          int              `json:"iters"`
	Protocols      []protocolResult `json:"protocols"`
	ShardedScaling []scalingPoint   `json:"sharded_scaling"`
	RecoveryChurn  *recoveryResult  `json:"recovery_churn,omitempty"`
}

var protocols = []struct {
	name string
	p    termproto.Protocol
}{
	{"2pc", termproto.TwoPC()},
	{"2pc-ext", termproto.TwoPCExtended()},
	{"3pc", termproto.ThreePC(false)},
	{"3pc-rules", termproto.ThreePCRules()},
	{"cooperative", termproto.Cooperative()},
	{"quorum", termproto.Quorum()},
	{"termination", termproto.TerminationTransient()},
	{"4pc-termination", termproto.FourPCTermination()},
}

func measureProtocol(p termproto.Protocol, iters int) protocolResult {
	const sites, txns = 5, 24
	var committed, blocked, inconsistent int
	start := time.Now()
	for i := 0; i < iters; i++ {
		c, err := termproto.Open(termproto.ClusterConfig{
			Sites:    sites,
			Protocol: p,
			Schedule: termproto.Schedule{
				termproto.TransientPartitionAt(2500, 8500, 4, 5),
			},
			Backend: termproto.NewSimBackend(termproto.SimOptions{Seed: uint64(i + 1)}),
		})
		if err != nil {
			fatal(err)
		}
		batch := make([]termproto.Txn, txns)
		for j := range batch {
			batch[j].At = termproto.Time(j) * 500
		}
		if _, err := c.SubmitBatch(batch); err != nil {
			fatal(err)
		}
		if err := c.Wait(); err != nil {
			fatal(err)
		}
		st := c.Stats()
		committed += st.Committed
		blocked += st.Blocked
		inconsistent += st.Inconsistent
		c.Close()
	}
	elapsed := time.Since(start).Seconds()
	total := float64(iters * txns)
	return protocolResult{
		CommittedTxnsPerS: float64(committed) / elapsed,
		CommittedFrac:     float64(committed) / total,
		BlockedFrac:       float64(blocked) / total,
		InconsistentFrac:  float64(inconsistent) / total,
	}
}

func measureScaling(sites, rf, iters int) scalingPoint {
	var committed, crossShard, txns int
	start := time.Now()
	for i := 0; i < iters; i++ {
		st, _ := workload.Run(workload.Config{
			Sites:    sites,
			Protocol: termproto.TerminationTransient(),
			Shards:   sites, ReplicationFactor: rf,
			Accounts: 3 * sites, InitialBalance: 1 << 30,
			Txns: 24 * sites, Concurrency: 48,
			Seed: uint64(i + 1),
		})
		if st.Inconsistent != 0 || st.Undecided != 0 || !st.Replicated {
			fatal(fmt.Errorf("sharded workload failed at %d sites: %+v", sites, st))
		}
		committed += st.Commits
		crossShard += st.CrossShard
		txns += st.Txns
	}
	elapsed := time.Since(start).Seconds()
	return scalingPoint{
		Sites: sites, Shards: sites, ReplicationFactor: rf,
		CommittedTxnsPerS: float64(committed) / elapsed,
		CommittedFrac:     float64(committed) / float64(txns),
		CrossShardFrac:    float64(crossShard) / float64(txns),
	}
}

func measureRecovery(iters int) recoveryResult {
	var committed, txns, recoveries int
	var recoveryTime float64
	start := time.Now()
	for i := 0; i < iters; i++ {
		st, _ := workload.Run(workload.Config{
			Sites: 5, Protocol: termproto.TerminationTransient(),
			Accounts: 16, InitialBalance: 1 << 30, Txns: 64,
			Concurrency: 8, CrashRecoverEvery: 2,
			Zipf: 0.8, OpsPerTxn: 3, Seed: uint64(i + 1),
		})
		if st.Inconsistent != 0 || st.Undecided != 0 || !st.Replicated || st.Unresolved != 0 {
			fatal(fmt.Errorf("recovery churn workload failed: %+v", st))
		}
		committed += st.Commits
		txns += st.Txns
		recoveries += st.Recoveries
		recoveryTime += st.RecoveryTime.Seconds()
	}
	elapsed := time.Since(start).Seconds()
	out := recoveryResult{
		CommittedTxnsPerS: float64(committed) / elapsed,
		CommittedFrac:     float64(committed) / float64(txns),
		Recoveries:        recoveries,
	}
	if recoveries > 0 {
		out.MeanRecoveryMs = recoveryTime * 1000 / float64(recoveries)
	}
	return out
}

// checkBaseline compares this run's committed-txns/s numbers against a
// committed earlier report and prints a warning for every drop beyond 20%.
// Soft by design: it never fails the build.
func checkBaseline(path string, cur report) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Printf("baseline: skipped (%v)\n", err)
		return
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Printf("baseline: skipped (unparseable: %v)\n", err)
		return
	}
	warns := 0
	warn := func(what string, baseV, curV float64) {
		if baseV <= 0 || curV >= 0.8*baseV {
			return
		}
		warns++
		fmt.Printf("WARNING: %s committed-txns/s dropped %.0f%% vs baseline (%.0f -> %.0f)\n",
			what, 100*(1-curV/baseV), baseV, curV)
	}
	baseProto := make(map[string]protocolResult, len(base.Protocols))
	for _, p := range base.Protocols {
		baseProto[p.Name] = p
	}
	for _, p := range cur.Protocols {
		if bp, ok := baseProto[p.Name]; ok {
			warn("protocol "+p.Name, bp.CommittedTxnsPerS, p.CommittedTxnsPerS)
		}
	}
	baseScale := make(map[int]scalingPoint, len(base.ShardedScaling))
	for _, s := range base.ShardedScaling {
		baseScale[s.Sites] = s
	}
	for _, s := range cur.ShardedScaling {
		if bs, ok := baseScale[s.Sites]; ok {
			warn(fmt.Sprintf("sharded n=%d", s.Sites), bs.CommittedTxnsPerS, s.CommittedTxnsPerS)
		}
	}
	if base.RecoveryChurn != nil && cur.RecoveryChurn != nil {
		warn("recovery churn", base.RecoveryChurn.CommittedTxnsPerS, cur.RecoveryChurn.CommittedTxnsPerS)
	}
	if warns == 0 {
		fmt.Printf("baseline: no regressions beyond 20%% vs %s (%s)\n", path, base.Date)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}

func main() {
	date := time.Now().Format("2006-01-02")
	out := flag.String("o", "BENCH_"+date+".json", "output path")
	iters := flag.Int("iters", 8, "iterations per measurement")
	quick := flag.Bool("quick", false, "2 iterations, small scaling sweep (CI smoke)")
	baseline := flag.String("baseline", "", "earlier report to soft-check regressions against")
	flag.Parse()
	if *quick {
		*iters = 2
	}

	rep := report{Date: date, Iters: *iters}
	for _, pc := range protocols {
		r := measureProtocol(pc.p, *iters)
		r.Name = pc.name
		rep.Protocols = append(rep.Protocols, r)
		fmt.Printf("%-16s %10.0f committed-txns/s  committed=%.2f blocked=%.2f inconsistent=%.2f\n",
			pc.name, r.CommittedTxnsPerS, r.CommittedFrac, r.BlockedFrac, r.InconsistentFrac)
	}
	sizes := []int{6, 12, 24}
	if *quick {
		sizes = []int{6, 12}
	}
	for _, sites := range sizes {
		pt := measureScaling(sites, 3, *iters)
		rep.ShardedScaling = append(rep.ShardedScaling, pt)
		fmt.Printf("sharded n=%-3d rf=%d %10.0f committed-txns/s  committed=%.2f cross-shard=%.2f\n",
			pt.Sites, pt.ReplicationFactor, pt.CommittedTxnsPerS, pt.CommittedFrac, pt.CrossShardFrac)
	}
	rc := measureRecovery(*iters)
	rep.RecoveryChurn = &rc
	fmt.Printf("recovery churn   %10.0f committed-txns/s  committed=%.2f recoveries=%d mean-recovery=%.2fms\n",
		rc.CommittedTxnsPerS, rc.CommittedFrac, rc.Recoveries, rc.MeanRecoveryMs)
	if *baseline != "" {
		checkBaseline(*baseline, rep)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
