// Command protoviz dumps the formal models of the paper's commit protocols
// — Figures 1, 3 and 8 plus the four-phase generalization — as text or
// Graphviz DOT, together with the Skeen–Stonebraker structural analysis:
// reachable global states, concurrency sets, committability, sender sets
// and the Lemma 1/2 verdicts.
//
// Usage:
//
//	protoviz [-proto 2pc|3pc|3pc-mod|4pc] [-n sites] [-dot] [-analyze]
package main

import (
	"flag"
	"fmt"
	"os"

	"termproto/internal/fsa"
)

func main() {
	name := flag.String("proto", "3pc", "protocol: 2pc, 3pc, 3pc-mod, 4pc")
	n := flag.Int("n", 3, "number of sites for the reachability analysis")
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of text")
	analyze := flag.Bool("analyze", true, "include the structural analysis")
	flag.Parse()

	var p *fsa.Protocol
	switch *name {
	case "2pc":
		p = fsa.TwoPC()
	case "3pc":
		p = fsa.ThreePC(false)
	case "3pc-mod":
		p = fsa.ThreePC(true)
	case "4pc":
		p = fsa.FourPC()
	default:
		fmt.Fprintf(os.Stderr, "protoviz: unknown protocol %q\n", *name)
		os.Exit(2)
	}

	if *dot {
		fmt.Print(p.DOT())
		return
	}
	fmt.Print(p.Text())
	if *analyze {
		fmt.Println()
		a := fsa.Analyze(p, *n)
		fmt.Print(a.Summary())
		fmt.Println()
		for _, id := range a.States() {
			if ss := p.SenderSet(id); len(ss) > 0 {
				fmt.Printf("  S(%s) = %v\n", id, ss)
			}
		}
	}
}
