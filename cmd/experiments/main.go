// Command experiments regenerates every analytical artifact of Huang & Li
// (ICDE 1987) — figures, counterexamples, lemma verdicts and timing bounds
// — and prints one table per experiment (DESIGN.md §4 maps IDs to paper
// artifacts). Exit status is non-zero if any experiment fails to reproduce
// the paper's claim.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"termproto/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced sweep sizes")
	only := flag.String("only", "", "comma-separated experiment IDs to run (e.g. E3,E13)")
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}

	failed := 0
	for _, t := range experiments.All(experiments.Config{Quick: *quick}) {
		if len(want) > 0 && !want[t.ID] {
			continue
		}
		fmt.Println(t)
		if !t.Pass {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed to reproduce the paper\n", failed)
		os.Exit(1)
	}
}
