// Benchmarks: one per paper artifact (the E-series mirrors DESIGN.md §4 —
// each regenerates a figure, counterexample or analytical table of Huang &
// Li, ICDE 1987) plus substrate micro-benchmarks (the P-series). Run with:
//
//	go test -bench=. -benchmem
package termproto_test

import (
	"fmt"
	"testing"

	"termproto"
	"termproto/internal/db/engine"
	"termproto/internal/db/lock"
	"termproto/internal/db/wal"
	"termproto/internal/experiments"
	"termproto/internal/fsa"
	"termproto/internal/proto"
	"termproto/internal/sim"
	"termproto/internal/simnet"
	"termproto/internal/workload"
)

var cfg = experiments.Config{Quick: true}

func benchTable(b *testing.B, run func() *experiments.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if t := run(); !t.Pass {
			b.Fatalf("%s failed to reproduce the paper:\n%s", t.ID, t)
		}
	}
}

// --- E-series: the paper's artifacts ---

func BenchmarkE1_Fig1_TwoPCAnalysis(b *testing.B) {
	benchTable(b, experiments.E1TwoPCAnalysis)
}

func BenchmarkE2_Fig2_ExtendedTwoPC(b *testing.B) {
	benchTable(b, func() *experiments.Table { return experiments.E2ExtendedTwoPCTwoSite(cfg) })
}

func BenchmarkE3_Sec3_ExtTwoPCCounterexample(b *testing.B) {
	benchTable(b, experiments.E3ExtTwoPCCounterexample)
}

func BenchmarkE4_Fig3_ThreePCAnalysis(b *testing.B) {
	benchTable(b, experiments.E4ThreePCAnalysis)
}

func BenchmarkE5_Sec3_ThreePCRulesCounterexample(b *testing.B) {
	benchTable(b, experiments.E5ThreePCRulesCounterexample)
}

func BenchmarkE6_Lemma3_AugmentationSearch(b *testing.B) {
	benchTable(b, func() *experiments.Table { return experiments.E6Lemma3Search(cfg) })
}

func BenchmarkE7_Fig5_TimeoutTightness(b *testing.B) {
	benchTable(b, experiments.E7Fig5Timeouts)
}

func BenchmarkE8_Fig6_MasterProbeWindow(b *testing.B) {
	benchTable(b, func() *experiments.Table { return experiments.E8Fig6MasterWindow(cfg) })
}

func BenchmarkE9_Fig7_SlaveWaitWindow(b *testing.B) {
	benchTable(b, func() *experiments.Table { return experiments.E9Fig7SlaveWindow(cfg) })
}

func BenchmarkE10_Fig8_WToCTransition(b *testing.B) {
	benchTable(b, experiments.E10Fig8WToC)
}

func BenchmarkE11_Fig9_CaseBounds(b *testing.B) {
	benchTable(b, func() *experiments.Table { return experiments.E11Fig9CaseBounds(cfg) })
}

func BenchmarkE12_Sec6_TransientFix(b *testing.B) {
	benchTable(b, experiments.E12TransientFix)
}

func BenchmarkE13_Theorem9_Resilience(b *testing.B) {
	benchTable(b, func() *experiments.Table { return experiments.E13Theorem9Resilience(cfg) })
}

func BenchmarkE14_Theorem10_Generalized(b *testing.B) {
	benchTable(b, func() *experiments.Table { return experiments.E14Theorem10FourPC(cfg) })
}

func BenchmarkE15_Ablations(b *testing.B) {
	benchTable(b, func() *experiments.Table { return experiments.E15Ablations(cfg) })
}

// BenchmarkE16_RecoveryChurn measures the durability subsystem under
// crash/recover churn: a WAL-backed banking workload in which one site
// fails during every other batch and durably restarts — log replay,
// in-doubt resolution through the termination protocol's inquiry round,
// and anti-entropy catch-up — at the batch boundary. Reported metrics are
// committed transactions per wall-clock second under the churn and the
// mean per-recovery resolution latency in milliseconds; every run must
// end fully replicated with no transaction unresolved.
func BenchmarkE16_RecoveryChurn(b *testing.B) {
	var committed, txns, recoveries int
	var recoveryTime float64
	for i := 0; i < b.N; i++ {
		st, _ := workload.Run(workload.Config{
			Sites: 5, Protocol: termproto.TerminationTransient(),
			Accounts: 16, InitialBalance: 1 << 30, Txns: 64,
			Concurrency: 8, CrashRecoverEvery: 2,
			Zipf: 0.8, OpsPerTxn: 3, Seed: uint64(i + 1),
		})
		if st.Inconsistent != 0 || st.Undecided != 0 || !st.Replicated || st.Unresolved != 0 {
			b.Fatalf("churn workload failed: %+v", st)
		}
		committed += st.Commits
		txns += st.Txns
		recoveries += st.Recoveries
		recoveryTime += st.RecoveryTime.Seconds()
	}
	b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "committed-txns/s")
	b.ReportMetric(float64(committed)/float64(txns), "committed-frac")
	b.ReportMetric(float64(recoveries)/float64(b.N), "recoveries/run")
	if recoveries > 0 {
		b.ReportMetric(recoveryTime*1000/float64(recoveries), "recovery-ms")
	}
}

// --- P-series: substrate micro-benchmarks ---

// BenchmarkP1_ProtocolRound measures one full failure-free termination-
// protocol transaction (4 sites) through the simulator.
func BenchmarkP1_ProtocolRound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := termproto.Run(termproto.Options{
			N: 4, Protocol: termproto.Termination(), DisableTrace: true,
		})
		if !r.Consistent() {
			b.Fatal("inconsistent")
		}
	}
}

// BenchmarkP2_PartitionedRound measures a partitioned termination-protocol
// transaction including the 5T window and probe traffic.
func BenchmarkP2_PartitionedRound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := termproto.Run(termproto.Options{
			N: 5, Protocol: termproto.Termination(), DisableTrace: true,
			Partition: &termproto.Partition{At: 2500, G2: termproto.G2(4, 5)},
		})
		if !r.Consistent() {
			b.Fatal("inconsistent")
		}
	}
}

// BenchmarkP3_NetworkThroughput measures raw simulated message delivery.
func BenchmarkP3_NetworkThroughput(b *testing.B) {
	sched, net := newBenchNet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send(proto.Msg{From: 1, To: 2, Kind: proto.MsgXact})
		if i%1024 == 1023 {
			sched.Run()
		}
	}
	sched.Run()
}

func newBenchNet() (*sim.Scheduler, *simnet.Network) {
	sched := sim.NewScheduler()
	n := simnet.New(simnet.Config{Sched: sched, T: 100, Latency: simnet.Fixed{D: 10}})
	sink := simnet.HandlerFuncs{
		OnDeliver:       func(proto.Msg) {},
		OnUndeliverable: func(proto.Msg) {},
	}
	n.Register(1, sink)
	n.Register(2, sink)
	return sched, n
}

// BenchmarkP4_WALAppend measures stable-log appends with CRC and sync.
func BenchmarkP4_WALAppend(b *testing.B) {
	l := wal.New(&wal.MemStore{})
	r := wal.Record{Type: wal.RecUpdate, TID: 7, Key: []byte("acct/alice"), Value: []byte("1000")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkP5_EngineTxn measures a full execute/commit cycle on the
// database engine (locks, WAL, B-tree apply).
func BenchmarkP5_EngineTxn(b *testing.B) {
	e := engine.New("bench", &wal.MemStore{})
	e.PutInt("acct", 1<<40)
	payload := engine.EncodeOps([]engine.Op{{Kind: engine.OpAdd, Key: "acct", Delta: -1}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tid := proto.TxnID(i + 1)
		if !e.Execute(tid, payload) {
			b.Fatal("vote no")
		}
		e.Commit(tid)
	}
}

// BenchmarkP6_LockManager measures acquire/release pairs.
func BenchmarkP6_LockManager(b *testing.B) {
	m := lock.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tid := uint64(i + 1)
		if !m.TryAcquire(tid, "row", lock.Exclusive) {
			b.Fatal("denied")
		}
		m.Release(tid)
	}
}

// BenchmarkP7_FSAReachability measures the exhaustive global-state
// exploration of 3PC with three sites.
func BenchmarkP7_FSAReachability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := fsa.Analyze(fsa.ThreePC(false), 3)
		if !a.SatisfiesLemmas() {
			b.Fatal("lemma verdict changed")
		}
	}
}

// BenchmarkP8_QuorumRound measures the quorum baseline's partitioned
// termination (polling rounds included) for comparison with P2.
func BenchmarkP8_QuorumRound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := termproto.Run(termproto.Options{
			N: 5, Protocol: termproto.Quorum(), DisableTrace: true,
			Partition: &termproto.Partition{At: 2500, G2: termproto.G2(4, 5)},
		})
		if !r.Consistent() {
			b.Fatal("inconsistent")
		}
	}
}

// BenchmarkP9_PartitionedWorkload measures a 30-transaction banking
// workload with a partition injected into every third transaction.
func BenchmarkP9_PartitionedWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, _ := workload.Run(workload.Config{
			Sites: 4, Protocol: termproto.TerminationTransient(),
			Accounts: 4, InitialBalance: 10_000, Txns: 30,
			PartitionEvery: 3, Seed: uint64(i + 1),
		})
		if st.Inconsistent != 0 || st.Undecided != 0 || !st.Replicated {
			b.Fatalf("workload failed: %+v", st)
		}
	}
}

// --- C-series: cluster throughput ---

// benchProtocols is every commit protocol in the repository, in paper
// order.
var benchProtocols = []struct {
	name string
	p    termproto.Protocol
}{
	{"2pc", termproto.TwoPC()},
	{"2pc-ext", termproto.TwoPCExtended()},
	{"3pc", termproto.ThreePC(false)},
	{"3pc-rules", termproto.ThreePCRules()},
	{"cooperative", termproto.Cooperative()},
	{"quorum", termproto.Quorum()},
	{"termination", termproto.TerminationTransient()},
	{"4pc-termination", termproto.FourPCTermination()},
}

// BenchmarkC1_ClusterThroughput measures committed transactions per
// wall-clock second for every protocol: 24 concurrent transactions
// batched onto one sim timeline while a transient partition separates two
// of five sites mid-traffic. Blocking protocols commit less under the
// same offered load — the paper's availability argument as a benchmark —
// and the unsafe ones (extended 2PC, rule-augmented 3PC, cooperative
// termination: the Section 3 counterexamples) show a nonzero
// inconsistent-frac instead of failing the benchmark.
func BenchmarkC1_ClusterThroughput(b *testing.B) {
	for _, pc := range benchProtocols {
		b.Run(pc.name, func(b *testing.B) {
			const txns = 24
			var committed, blocked, inconsistent int
			for i := 0; i < b.N; i++ {
				c, err := termproto.Open(termproto.ClusterConfig{
					Sites:    5,
					Protocol: pc.p,
					Schedule: termproto.Schedule{
						termproto.TransientPartitionAt(2500, 8500, 4, 5),
					},
					Backend: termproto.NewSimBackend(termproto.SimOptions{
						Seed: uint64(i + 1),
					}),
				})
				if err != nil {
					b.Fatal(err)
				}
				batch := make([]termproto.Txn, txns)
				for j := range batch {
					batch[j].At = termproto.Time(j) * 500
				}
				if _, err := c.SubmitBatch(batch); err != nil {
					b.Fatal(err)
				}
				if err := c.Wait(); err != nil {
					b.Fatal(err)
				}
				st := c.Stats()
				committed += st.Committed
				blocked += st.Blocked
				inconsistent += st.Inconsistent
				c.Close()
			}
			b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "committed-txns/s")
			b.ReportMetric(float64(committed)/float64(b.N*txns), "committed-frac")
			b.ReportMetric(float64(blocked)/float64(b.N*txns), "blocked-frac")
			b.ReportMetric(float64(inconsistent)/float64(b.N*txns), "inconsistent-frac")
		})
	}
}

// --- D-series: sharded placement / horizontal scaling ---

// shardedWorkload is the D-series configuration: shards scale with the
// cluster, the replication factor stays fixed, the account keyspace and
// offered load grow with the sites. Transfers run only at their
// participant sites, so per-transaction cost is O(RF), not O(sites).
func shardedWorkload(sites, rf int, seed uint64) workload.Config {
	return workload.Config{
		Sites:    sites,
		Protocol: termproto.TerminationTransient(),
		Shards:   sites, ReplicationFactor: rf,
		Accounts: 3 * sites, InitialBalance: 1 << 30,
		Txns: 24 * sites, Concurrency: 48,
		Seed: seed,
	}
}

// BenchmarkD1_ShardedScaling measures committed transactions per
// wall-clock second as the cluster grows at fixed replication factor —
// the horizontal-scaling headline. Offered load and keyspace scale with
// the sites while each transfer still involves only its participants, so
// the committed-txns/s curve rises with cluster size (under full
// replication it falls: every commit touches every site).
func BenchmarkD1_ShardedScaling(b *testing.B) {
	const rf = 3
	for _, sites := range []int{6, 12, 24} {
		b.Run(fmt.Sprintf("n=%d", sites), func(b *testing.B) {
			var committed, crossShard, txns int
			for i := 0; i < b.N; i++ {
				st, _ := workload.Run(shardedWorkload(sites, rf, uint64(i+1)))
				if st.Inconsistent != 0 || st.Undecided != 0 || !st.Replicated {
					b.Fatalf("sharded workload failed: %+v", st)
				}
				committed += st.Commits
				crossShard += st.CrossShard
				txns += st.Txns
			}
			b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "committed-txns/s")
			b.ReportMetric(float64(committed)/float64(txns), "committed-frac")
			b.ReportMetric(float64(crossShard)/float64(txns), "cross-shard-frac")
		})
	}
}

// BenchmarkD2_ShardedVsFull contrasts the two placement models on the
// same 12-site cluster and offered load: full replication runs every
// transfer at all 12 sites, sharded placement at ~3.
func BenchmarkD2_ShardedVsFull(b *testing.B) {
	const sites = 12
	base := shardedWorkload(sites, 3, 1)
	for _, mode := range []struct {
		name    string
		sharded bool
	}{{"full", false}, {"sharded", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var committed int
			for i := 0; i < b.N; i++ {
				cfg := base
				cfg.Seed = uint64(i + 1)
				if !mode.sharded {
					cfg.Shards, cfg.ReplicationFactor = 0, 0
				}
				st, _ := workload.Run(cfg)
				if st.Inconsistent != 0 || st.Undecided != 0 {
					b.Fatalf("workload failed: %+v", st)
				}
				committed += st.Commits
			}
			b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "committed-txns/s")
		})
	}
}

// BenchmarkC2_ClusterEngineThroughput measures the full database path —
// locks, WAL, B-tree apply — under concurrent batched submission through
// the termination protocol, reusing the engine fixtures across
// iterations (one long-lived cluster, batches of 16).
func BenchmarkC2_ClusterEngineThroughput(b *testing.B) {
	const sites, accounts, batchSize = 4, 64, 16
	engines := make(map[termproto.SiteID]termproto.Participant, sites)
	for i := 1; i <= sites; i++ {
		e := termproto.NewEngine(fmt.Sprintf("bench-%d", i), &termproto.MemStore{})
		for a := 0; a < accounts; a++ {
			e.PutInt(fmt.Sprintf("acct/%d", a), 1<<40)
		}
		engines[termproto.SiteID(i)] = e
	}
	c, err := termproto.Open(termproto.ClusterConfig{
		Sites:        sites,
		Protocol:     termproto.TerminationTransient(),
		Participants: engines,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	var committed int
	tid := termproto.TxnID(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := make([]termproto.Txn, batchSize)
		for j := range batch {
			tid++
			from := int(tid) % accounts
			to := (from + 7) % accounts
			batch[j] = termproto.Txn{
				ID: tid,
				Payload: termproto.EncodeOps([]termproto.Op{
					{Kind: termproto.OpAdd, Key: fmt.Sprintf("acct/%d", from), Delta: -1},
					{Kind: termproto.OpAdd, Key: fmt.Sprintf("acct/%d", to), Delta: 1},
				}),
				At: c.Now(),
			}
		}
		if _, err := c.SubmitBatch(batch); err != nil {
			b.Fatal(err)
		}
		if err := c.Wait(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := c.Stats()
	committed = st.Committed
	if st.Inconsistent != 0 || st.Blocked != 0 {
		b.Fatalf("engine throughput run failed: %v", st)
	}
	b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "committed-txns/s")
}
